//! The `trace` experiment subcommand: streaming trace-file tooling.
//!
//! ```text
//! bash-experiments trace info <file>            header, counts, chunk map
//! bash-experiments trace migrate <in> <out>     re-encode (v1 or v2) as v2
//! bash-experiments trace replay <file>          stream through all protocols
//! bash-experiments trace diff <file>            differential latency diff
//! ```
//!
//! Everything here runs on the streaming API ([`TraceReader`] /
//! [`TraceWriter`] / `SimBuilder::trace_in_path`), so none of the
//! subcommands require the trace to fit in memory except `diff` (which
//! replays through the verification harness and wants the record list in
//! hand).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write as _};

use bash::tester::VerifyConfig;
use bash::{
    differential_trace, ProtocolKind, SimBuilder, Trace, TraceError, TraceReader, TraceRecord,
    TraceWriter,
};

use crate::common::Options;

/// Counters a recovering scan of a trace file accumulates.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScanStats {
    /// Records decoded (corruption-skipped chunks excluded).
    records: u64,
    /// Records carrying a completion latency.
    completions: u64,
    /// Records per issuing node.
    per_node: Vec<u64>,
    /// Chunks recovering mode skipped over corruption.
    skipped_chunks: u64,
}

/// Outcome of [`scan_recovering`]: the counters, the drained reader
/// (for its trailing chunk index), and the hard decode error when the
/// file's framing itself was broken (recovery only covers payload rot).
struct Scan<R: Read> {
    stats: ScanStats,
    reader: TraceReader<R>,
    error: Option<TraceError>,
}

/// Streams the whole file through a **recovering** reader: a chunk whose
/// payload fails to decode is skipped (and counted) instead of poisoning
/// the scan, so a damaged file still yields its surviving records.
/// `on_record` sees every surviving record in order.
fn scan_recovering<R: Read>(
    reader: TraceReader<R>,
    mut on_record: impl FnMut(TraceRecord),
) -> Scan<R> {
    let mut reader = reader.recovering();
    let mut stats = ScanStats {
        records: 0,
        completions: 0,
        per_node: vec![0; reader.header().nodes as usize],
        skipped_chunks: 0,
    };
    let mut error = None;
    for r in &mut reader {
        match r {
            Ok(r) => {
                stats.records += 1;
                stats.completions += r.completion.is_some() as u64;
                stats.per_node[r.node.index()] += 1;
                on_record(r);
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    stats.skipped_chunks = reader.skipped_chunks();
    Scan {
        stats,
        reader,
        error,
    }
}

/// The corruption warning line `info` and `replay` print when a
/// recovering scan had to skip chunks.
fn skipped_warning(skipped: u64, records: u64) -> String {
    format!(
        "WARNING: skipped {skipped} corrupted chunk{} ({records} records survive)",
        if skipped == 1 { "" } else { "s" }
    )
}

/// Entry point: dispatches the `trace` subcommand. Returns `false` on a
/// usage or I/O error (the caller exits non-zero).
pub fn trace_cmd(opts: &Options, args: &[String]) -> bool {
    match args {
        [sub, file] if sub == "info" => info(file),
        [sub, input, output] if sub == "migrate" => migrate(input, output),
        [sub, file] if sub == "replay" => replay(opts, file),
        [sub, file] if sub == "diff" => diff(file),
        _ => {
            eprintln!("usage: bash-experiments trace <info FILE | migrate IN OUT | replay FILE | diff FILE>");
            false
        }
    }
}

fn open_reader(path: &str) -> Option<TraceReader<BufReader<File>>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace: cannot open {path}: {e}");
            return None;
        }
    };
    match TraceReader::new(BufReader::new(file)) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("trace: cannot decode {path}: {e}");
            None
        }
    }
}

/// Streams the whole file once (in recovering mode, so a damaged file
/// still describes its surviving records): header, record/completion
/// counts, a corruption warning when chunks had to be skipped, and the
/// chunk map when the trace carries an index.
fn info(path: &str) -> bool {
    let Some(reader) = open_reader(path) else {
        return false;
    };
    let header = reader.header().clone();
    println!(
        "{path}: bash-trace v{} nodes={} seed={:#x} workload={:?}",
        header.version, header.nodes, header.seed, header.workload
    );
    let scan = scan_recovering(reader, |_| {});
    if let Some(e) = scan.error {
        eprintln!(
            "trace: decode failed after {} records: {e}",
            scan.stats.records
        );
        return false;
    }
    let records = scan.stats.records;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "  {records} records ({} with completion latency), {bytes} bytes \
         ({:.2} B/record)",
        scan.stats.completions,
        bytes as f64 / records.max(1) as f64
    );
    println!(
        "  per-node ops: [{}]",
        scan.stats
            .per_node
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    if scan.stats.skipped_chunks > 0 {
        println!("  {}", skipped_warning(scan.stats.skipped_chunks, records));
    }
    match scan.reader.index() {
        Some(index) => println!(
            "  chunk index: {} chunks, largest {} records",
            index.entries.len(),
            index.entries.iter().map(|e| e.count).max().unwrap_or(0)
        ),
        None => println!("  no chunk index (v1 trace or index-less v2)"),
    }
    true
}

/// Streams `input` (either version) into a fresh v2 `output` — the bless
/// path for migrating committed fixtures. Record-preserving: completions
/// and ordering survive; only the container changes.
fn migrate(input: &str, output: &str) -> bool {
    let Some(mut reader) = open_reader(input) else {
        return false;
    };
    let header = reader.header().clone();
    let out = match File::create(output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace: cannot create {output}: {e}");
            return false;
        }
    };
    let mut writer = match TraceWriter::new(
        BufWriter::new(out),
        header.nodes,
        header.seed,
        header.workload.clone(),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("trace: cannot write {output}: {e}");
            return false;
        }
    };
    let mut records = 0usize;
    for r in &mut reader {
        let r = match r {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace: {input} decode failed after {records} records: {e}");
                return false;
            }
        };
        if let Err(e) = writer.write(r) {
            eprintln!("trace: {output} write failed at record {records}: {e}");
            return false;
        }
        records += 1;
    }
    match writer.finish().map(|mut w| w.flush()) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("trace: {output} flush failed: {e}");
            return false;
        }
        Err(e) => {
            eprintln!("trace: {output} finalize failed: {e}");
            return false;
        }
    }
    println!(
        "migrated {input} (v{}) -> {output} (v2), {records} records",
        header.version
    );
    true
}

/// Replays the file through all three protocols at the paper-default
/// system. A healthy file streams per run (`trace_in_path`, never
/// buffered); a file whose recovering pre-scan had to skip corrupted
/// chunks prints a warning row and replays the surviving records from
/// memory instead of dying mid-run.
fn replay(opts: &Options, path: &str) -> bool {
    let Some(reader) = open_reader(path) else {
        return false;
    };
    let header = reader.header().clone();
    let scan = scan_recovering(reader, |_| {});
    if let Some(e) = scan.error {
        eprintln!(
            "trace: decode failed after {} records: {e}",
            scan.stats.records
        );
        return false;
    }
    let skipped = scan.stats.skipped_chunks;
    let survivors = if skipped > 0 {
        println!("{}", skipped_warning(skipped, scan.stats.records));
        let Some(reader) = open_reader(path) else {
            return false;
        };
        let mut records = Vec::with_capacity(scan.stats.records as usize);
        scan_recovering(reader, |r| records.push(r));
        Some(Trace {
            nodes: header.nodes,
            seed: header.seed,
            workload: header.workload,
            records,
        })
    } else {
        None
    };
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>10}",
        "protocol", "ops/ms", "latency", "util", "broadcast"
    );
    for proto in ProtocolKind::ALL {
        let builder = match &survivors {
            Some(trace) => SimBuilder::new(proto).trace_in(trace.clone()),
            None => match SimBuilder::new(proto).trace_in_path(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("trace: {e}");
                    return false;
                }
            },
        };
        let report = builder
            .warmup(opts.window(bash::Duration::from_ns(5_000)))
            .measure(opts.window(bash::Duration::from_ns(20_000)))
            .run();
        println!(
            "{:<10} {:>12.1} {:>10.1}ns {:>7.1}% {:>9.1}%",
            report.protocol.name(),
            report.ops_per_sec.mean / 1e6,
            report.miss_latency_ns.mean,
            report.link_utilization.mean * 100.0,
            report.broadcast_fraction.mean * 100.0,
        );
    }
    true
}

/// Runs the differential pass on the file and prints the per-protocol
/// latency-distribution diff (see the `verify` subcommand for the
/// catalog-wide latency gate).
fn diff(path: &str) -> bool {
    let trace = match Trace::read_from(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            return false;
        }
    };
    let cfg = VerifyConfig::new(ProtocolKind::Snooping, trace.seed);
    let report = differential_trace(&cfg, &trace);
    crate::verify::print_latency_diff(&report);
    if !report.passed() {
        eprintln!(
            "trace: differential FAILED: {} single-writer mismatches",
            report.mismatches.len()
        );
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash::net::NodeId;
    use bash::{BlockAddr, Duration, ProcOp, SeekableTrace};
    use std::io::Cursor;

    /// A v2 fixture with 32-record chunks: 100 records = 32+32+32+4.
    fn fixture_bytes() -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), 4, 0xBEEF, "fixture")
            .unwrap()
            .chunk_records(32);
        for i in 0u64..100 {
            let node = (i % 4) as u16;
            w.write(TraceRecord {
                node: NodeId(node),
                think: Duration::from_ns(5),
                instructions: 7,
                op: ProcOp::Store {
                    block: BlockAddr(0x4000_0000 + node as u64 * 0x1000 + i / 4),
                    word: (i % 8) as usize,
                    value: i,
                },
                completion: None,
            })
            .unwrap();
        }
        w.finish().unwrap()
    }

    /// The fixture with one payload byte of chunk `i` flipped — decodable
    /// only by a recovering reader, which skips that chunk.
    fn corrupted_bytes(chunk: usize) -> Vec<u8> {
        let mut bytes = fixture_bytes();
        let offset = SeekableTrace::open(Cursor::new(&bytes))
            .unwrap()
            .index()
            .entries[chunk]
            .offset;
        let data_start = TraceReader::new(&bytes[..]).unwrap().data_start().unwrap();
        bytes[data_start as usize + offset as usize + 6] ^= 0x01;
        bytes
    }

    #[test]
    fn recovering_scan_is_exact_on_healthy_files() {
        let bytes = fixture_bytes();
        let mut seen = 0u64;
        let scan = scan_recovering(TraceReader::new(&bytes[..]).unwrap(), |_| seen += 1);
        assert!(scan.error.is_none());
        assert_eq!(scan.stats.records, 100);
        assert_eq!(seen, 100);
        assert_eq!(scan.stats.skipped_chunks, 0);
        assert_eq!(scan.stats.per_node, vec![25, 25, 25, 25]);
    }

    #[test]
    fn recovering_scan_surfaces_skipped_chunks() {
        let bytes = corrupted_bytes(2);
        let mut survivors = Vec::new();
        let scan = scan_recovering(TraceReader::new(&bytes[..]).unwrap(), |r| survivors.push(r));
        assert!(scan.error.is_none(), "payload rot must not poison the scan");
        assert_eq!(scan.stats.skipped_chunks, 1);
        assert_eq!(scan.stats.records, 68, "100 records minus chunk 2's 32");
        assert_eq!(survivors.len(), 68);
        // The trailing index still describes the declared framing.
        assert_eq!(scan.reader.index().unwrap().entries.len(), 4);
        assert_eq!(
            skipped_warning(1, 68),
            "WARNING: skipped 1 corrupted chunk (68 records survive)"
        );
        assert_eq!(
            skipped_warning(2, 36),
            "WARNING: skipped 2 corrupted chunks (36 records survive)"
        );
    }

    #[test]
    fn info_describes_a_corrupted_fixture_instead_of_dying() {
        let dir = std::env::temp_dir().join("bash-trace-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupted.trace");
        std::fs::write(&path, corrupted_bytes(1)).unwrap();
        assert!(
            info(path.to_str().unwrap()),
            "info must survive payload rot"
        );
        let healthy = dir.join("healthy.trace");
        std::fs::write(&healthy, fixture_bytes()).unwrap();
        assert!(info(healthy.to_str().unwrap()));
    }
}
