//! The `trace` experiment subcommand: streaming trace-file tooling.
//!
//! ```text
//! bash-experiments trace info <file>            header, counts, chunk map
//! bash-experiments trace migrate <in> <out>     re-encode (v1 or v2) as v2
//! bash-experiments trace replay <file>          stream through all protocols
//! bash-experiments trace diff <file>            differential latency diff
//! ```
//!
//! Everything here runs on the streaming API ([`TraceReader`] /
//! [`TraceWriter`] / `SimBuilder::trace_in_path`), so none of the
//! subcommands require the trace to fit in memory except `diff` (which
//! replays through the verification harness and wants the record list in
//! hand).

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};

use bash::tester::VerifyConfig;
use bash::{differential_trace, ProtocolKind, SimBuilder, Trace, TraceReader, TraceWriter};

use crate::common::Options;

/// Entry point: dispatches the `trace` subcommand. Returns `false` on a
/// usage or I/O error (the caller exits non-zero).
pub fn trace_cmd(opts: &Options, args: &[String]) -> bool {
    match args {
        [sub, file] if sub == "info" => info(file),
        [sub, input, output] if sub == "migrate" => migrate(input, output),
        [sub, file] if sub == "replay" => replay(opts, file),
        [sub, file] if sub == "diff" => diff(file),
        _ => {
            eprintln!("usage: bash-experiments trace <info FILE | migrate IN OUT | replay FILE | diff FILE>");
            false
        }
    }
}

fn open_reader(path: &str) -> Option<TraceReader<BufReader<File>>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace: cannot open {path}: {e}");
            return None;
        }
    };
    match TraceReader::new(BufReader::new(file)) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("trace: cannot decode {path}: {e}");
            None
        }
    }
}

/// Streams the whole file once: header, record/completion counts, and the
/// chunk map when the trace carries an index.
fn info(path: &str) -> bool {
    let Some(mut reader) = open_reader(path) else {
        return false;
    };
    let header = reader.header().clone();
    println!(
        "{path}: bash-trace v{} nodes={} seed={:#x} workload={:?}",
        header.version, header.nodes, header.seed, header.workload
    );
    let mut records = 0usize;
    let mut completions = 0usize;
    let mut per_node = vec![0u64; header.nodes as usize];
    for r in &mut reader {
        let r = match r {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace: decode failed after {records} records: {e}");
                return false;
            }
        };
        records += 1;
        completions += r.completion.is_some() as usize;
        per_node[r.node.index()] += 1;
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "  {records} records ({completions} with completion latency), {bytes} bytes \
         ({:.2} B/record)",
        bytes as f64 / records.max(1) as f64
    );
    println!(
        "  per-node ops: [{}]",
        per_node
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    match reader.index() {
        Some(index) => println!(
            "  chunk index: {} chunks, largest {} records",
            index.entries.len(),
            index.entries.iter().map(|e| e.count).max().unwrap_or(0)
        ),
        None => println!("  no chunk index (v1 trace or index-less v2)"),
    }
    true
}

/// Streams `input` (either version) into a fresh v2 `output` — the bless
/// path for migrating committed fixtures. Record-preserving: completions
/// and ordering survive; only the container changes.
fn migrate(input: &str, output: &str) -> bool {
    let Some(mut reader) = open_reader(input) else {
        return false;
    };
    let header = reader.header().clone();
    let out = match File::create(output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace: cannot create {output}: {e}");
            return false;
        }
    };
    let mut writer = match TraceWriter::new(
        BufWriter::new(out),
        header.nodes,
        header.seed,
        header.workload.clone(),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("trace: cannot write {output}: {e}");
            return false;
        }
    };
    let mut records = 0usize;
    for r in &mut reader {
        let r = match r {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace: {input} decode failed after {records} records: {e}");
                return false;
            }
        };
        if let Err(e) = writer.write(r) {
            eprintln!("trace: {output} write failed at record {records}: {e}");
            return false;
        }
        records += 1;
    }
    match writer.finish().map(|mut w| w.flush()) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("trace: {output} flush failed: {e}");
            return false;
        }
        Err(e) => {
            eprintln!("trace: {output} finalize failed: {e}");
            return false;
        }
    }
    println!(
        "migrated {input} (v{}) -> {output} (v2), {records} records",
        header.version
    );
    true
}

/// Replays the file through all three protocols at the paper-default
/// system, decoding the trace streaming per run (`trace_in_path`).
fn replay(opts: &Options, path: &str) -> bool {
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>10}",
        "protocol", "ops/ms", "latency", "util", "broadcast"
    );
    for proto in ProtocolKind::ALL {
        let builder = match SimBuilder::new(proto).trace_in_path(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("trace: {e}");
                return false;
            }
        };
        let report = builder
            .warmup(opts.window(bash::Duration::from_ns(5_000)))
            .measure(opts.window(bash::Duration::from_ns(20_000)))
            .run();
        println!(
            "{:<10} {:>12.1} {:>10.1}ns {:>7.1}% {:>9.1}%",
            report.protocol.name(),
            report.ops_per_sec.mean / 1e6,
            report.miss_latency_ns.mean,
            report.link_utilization.mean * 100.0,
            report.broadcast_fraction.mean * 100.0,
        );
    }
    true
}

/// Runs the differential pass on the file and prints the per-protocol
/// latency-distribution diff (see the `verify` subcommand for the
/// catalog-wide latency gate).
fn diff(path: &str) -> bool {
    let trace = match Trace::read_from(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            return false;
        }
    };
    let cfg = VerifyConfig::new(ProtocolKind::Snooping, trace.seed);
    let report = differential_trace(&cfg, &trace);
    crate::verify::print_latency_diff(&report);
    if !report.passed() {
        eprintln!(
            "trace: differential FAILED: {} single-writer mismatches",
            report.mismatches.len()
        );
        return false;
    }
    true
}
