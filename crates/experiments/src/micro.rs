//! Microbenchmark experiments: Figures 1, 5, 6, 7, 8, 9.

use bash::{AdaptorConfig, Duration, ProtocolKind, RunReport};

use crate::common::{
    ascii_chart, point_builder, sweep_builder, write_csv, Options, Wl, BANDWIDTHS,
};

const MICRO_NODES: u16 = 64;
const MICRO_LOCKS: u64 = 1024;

fn micro_wl(think_cycles: u64) -> Wl {
    Wl::Micro {
        locks: MICRO_LOCKS,
        think: Duration::from_cycles(think_cycles),
    }
}

fn warmup(opts: &Options) -> Duration {
    opts.window(Duration::from_ns(80_000))
}

fn measure(opts: &Options) -> Duration {
    opts.window(Duration::from_ns(240_000))
}

/// The shared bandwidth sweep behind Figures 1, 5 and 6: performance and
/// utilization vs. endpoint bandwidth for all three protocols, 64
/// processors.
pub struct BandwidthSweep {
    /// `(protocol, bandwidth MB/s, point)` rows.
    pub rows: Vec<(ProtocolKind, u64, RunReport)>,
}

/// Runs the sweep — the whole (protocol × bandwidth × seed) grid goes
/// through the builder's parallel executor, one `run_sweep` per protocol.
pub fn bandwidth_sweep(opts: &Options) -> BandwidthSweep {
    let mut rows = Vec::new();
    for proto in ProtocolKind::ALL {
        let reports = sweep_builder(proto, MICRO_NODES, &BANDWIDTHS, &micro_wl(0), opts)
            .plan(warmup(opts), measure(opts))
            .run_sweep();
        for (&bw, p) in BANDWIDTHS.iter().zip(reports) {
            eprintln!(
                "  {:9} {:6} MB/s: {:8.1} acq/ms  util {:4.2}  bcast {:4.2}",
                proto.name(),
                bw,
                p.perf.mean / 1e6,
                p.link_utilization.mean,
                p.broadcast_fraction.mean
            );
            rows.push((proto, bw, p));
        }
    }
    BandwidthSweep { rows }
}

/// Figure 1: performance vs. available bandwidth, normalized to the best
/// point (the paper normalizes its y-axis to 1.0).
pub fn fig1(opts: &Options, sweep: &BandwidthSweep) {
    let best = sweep
        .rows
        .iter()
        .map(|(_, _, p)| p.perf.mean)
        .fold(0.0f64, f64::max);
    let mut csv = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for proto in ProtocolKind::ALL {
        let pts: Vec<(f64, f64)> = sweep
            .rows
            .iter()
            .filter(|(pr, ..)| *pr == proto)
            .map(|(_, bw, p)| (*bw as f64, p.perf.mean / best))
            .collect();
        for (bw, v) in &pts {
            csv.push(format!("{},{},{:.6}", proto.name(), bw, v));
        }
        series.push((proto.name(), pts));
    }
    ascii_chart(
        "Figure 1: performance vs endpoint bandwidth (64p microbenchmark)",
        &series,
        true,
    );
    let path = write_csv(
        opts,
        "fig1",
        "protocol,bandwidth_mbps,normalized_perf",
        &csv,
    );
    println!("  wrote {}", path.display());
}

/// Figure 5: the same data normalized to BASH at each bandwidth.
pub fn fig5(opts: &Options, sweep: &BandwidthSweep) {
    let bash_at = |bw: u64| {
        sweep
            .rows
            .iter()
            .find(|(p, b, _)| *p == ProtocolKind::Bash && *b == bw)
            .map(|(_, _, p)| p.perf.mean)
            .expect("bash point")
    };
    let mut csv = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for proto in ProtocolKind::ALL {
        let pts: Vec<(f64, f64)> = sweep
            .rows
            .iter()
            .filter(|(pr, ..)| *pr == proto)
            .map(|(_, bw, p)| (*bw as f64, p.perf.mean / bash_at(*bw)))
            .collect();
        for (bw, v) in &pts {
            csv.push(format!("{},{},{:.6}", proto.name(), bw, v));
        }
        series.push((proto.name(), pts));
    }
    ascii_chart(
        "Figure 5: performance normalized to BASH (64p microbenchmark)",
        &series,
        true,
    );
    let path = write_csv(opts, "fig5", "protocol,bandwidth_mbps,perf_vs_bash", &csv);
    println!("  wrote {}", path.display());
}

/// Figure 6: endpoint link utilization vs. available bandwidth; BASH holds
/// the 75 % target until even always-broadcast cannot reach it.
pub fn fig6(opts: &Options, sweep: &BandwidthSweep) {
    let mut csv = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for proto in ProtocolKind::ALL {
        let pts: Vec<(f64, f64)> = sweep
            .rows
            .iter()
            .filter(|(pr, ..)| *pr == proto)
            .map(|(_, bw, p)| (*bw as f64, p.link_utilization.mean * 100.0))
            .collect();
        for (bw, v) in &pts {
            csv.push(format!("{},{},{:.3}", proto.name(), bw, v));
        }
        series.push((proto.name(), pts));
    }
    ascii_chart(
        "Figure 6: endpoint link utilization (%) vs bandwidth; target = 75%",
        &series,
        true,
    );
    let path = write_csv(
        opts,
        "fig6",
        "protocol,bandwidth_mbps,utilization_pct",
        &csv,
    );
    println!("  wrote {}", path.display());
}

/// Figure 7: BASH's sensitivity to the utilization threshold (55/75/95 %).
pub fn fig7(opts: &Options) {
    let mut csv = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut best = 0.0f64;
    let mut raw: Vec<(String, u64, RunReport)> = Vec::new();
    for proto in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let reports = sweep_builder(proto, MICRO_NODES, &BANDWIDTHS, &micro_wl(0), opts)
            .plan(warmup(opts), measure(opts))
            .run_sweep();
        for (&bw, p) in BANDWIDTHS.iter().zip(reports) {
            best = best.max(p.perf.mean);
            raw.push((proto.name().to_string(), bw, p));
        }
    }
    for pct in [55u32, 75, 95] {
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.threshold_percent = pct;
        let reports = sweep_builder(
            ProtocolKind::Bash,
            MICRO_NODES,
            &BANDWIDTHS,
            &micro_wl(0),
            opts,
        )
        .adaptor(adaptor.clone())
        .plan(warmup(opts), measure(opts))
        .run_sweep();
        for (&bw, p) in BANDWIDTHS.iter().zip(reports) {
            best = best.max(p.perf.mean);
            raw.push((format!("BASH:{pct}%"), bw, p));
        }
        eprintln!("  threshold {pct}% done");
    }
    let names: Vec<String> = {
        let mut v: Vec<String> = raw.iter().map(|(n, ..)| n.clone()).collect();
        v.dedup();
        v
    };
    for name in &names {
        let pts: Vec<(f64, f64)> = raw
            .iter()
            .filter(|(n, ..)| n == name)
            .map(|(_, bw, p)| (*bw as f64, p.perf.mean / best))
            .collect();
        for (bw, v) in &pts {
            csv.push(format!("{},{},{:.6}", name, bw, v));
        }
        series.push((name.clone(), pts));
    }
    let series_ref: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    ascii_chart(
        "Figure 7: sensitivity to the utilization threshold (64p microbenchmark)",
        &series_ref,
        true,
    );
    let path = write_csv(opts, "fig7", "config,bandwidth_mbps,normalized_perf", &csv);
    println!("  wrote {}", path.display());
}

/// Figure 8: performance per processor vs. system size at a fixed 1600 MB/s
/// endpoint bandwidth per processor.
pub fn fig8(opts: &Options) {
    let sizes: [u16; 7] = [4, 8, 16, 32, 64, 128, 256];
    let mut csv = Vec::new();
    let mut raw: Vec<(ProtocolKind, u16, f64)> = Vec::new();
    let mut best = 0.0f64;
    for proto in ProtocolKind::ALL {
        for &n in &sizes {
            // Lock pool scales with the system; the measurement window
            // shrinks at large sizes to bound event counts.
            let wl = Wl::Micro {
                locks: 16 * n as u64,
                think: Duration::ZERO,
            };
            let meas = if n >= 128 {
                opts.window(Duration::from_ns(100_000))
            } else {
                measure(opts)
            };
            let p = point_builder(proto, n, 1600, &wl, opts)
                .plan(opts.window(Duration::from_ns(50_000)), meas)
                .run();
            let per_proc = p.perf.mean / n as f64;
            best = best.max(per_proc);
            eprintln!(
                "  {:9} {:3}p: {:9.1} acq/ms/proc",
                proto.name(),
                n,
                per_proc / 1e6
            );
            raw.push((proto, n, per_proc));
        }
    }
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for proto in ProtocolKind::ALL {
        let pts: Vec<(f64, f64)> = raw
            .iter()
            .filter(|(pr, ..)| *pr == proto)
            .map(|(_, n, v)| (*n as f64, v / best))
            .collect();
        for (n, v) in &pts {
            csv.push(format!("{},{},{:.6}", proto.name(), n, v));
        }
        series.push((proto.name(), pts));
    }
    ascii_chart(
        "Figure 8: perf per processor vs system size (1600 MB/s per proc)",
        &series,
        true,
    );
    let path = write_csv(
        opts,
        "fig8",
        "protocol,processors,normalized_perf_per_proc",
        &csv,
    );
    println!("  wrote {}", path.display());
}

/// Figure 9: average miss latency vs. think time (workload intensity).
pub fn fig9(opts: &Options) {
    let thinks: [u64; 6] = [0, 200, 400, 600, 800, 1000];
    let mut csv = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for proto in ProtocolKind::ALL {
        let mut pts = Vec::new();
        for &tc in &thinks {
            let p = point_builder(proto, MICRO_NODES, 1600, &micro_wl(tc), opts)
                .plan(warmup(opts), measure(opts))
                .run();
            pts.push((tc as f64, p.miss_latency_ns.mean));
            csv.push(format!(
                "{},{},{:.2}",
                proto.name(),
                tc,
                p.miss_latency_ns.mean
            ));
        }
        eprintln!("  {} done", proto.name());
        series.push((proto.name(), pts));
    }
    ascii_chart(
        "Figure 9: avg miss latency (ns) vs think time (cycles), 64p @ 1600 MB/s",
        &series,
        false,
    );
    let path = write_csv(
        opts,
        "fig9",
        "protocol,think_cycles,avg_miss_latency_ns",
        &csv,
    );
    println!("  wrote {}", path.display());
}
