//! A minimal, dependency-free stand-in for the `proptest` property-testing
//! framework.
//!
//! This workspace builds in fully offline environments, so the real
//! proptest crate cannot be fetched from crates.io. This shim implements
//! the API subset the workspace's property tests use — the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, range/tuple/`any`/`select`/vec
//! strategies, [`prop_oneof!`], [`prop_assert!`]/[`prop_assert_eq!`] and
//! [`prop_assume!`] — generating deterministic cases from a per-test seed.
//! There is no shrinking: a failing case panics with the generated inputs
//! visible in the assertion message (tests bind them by name, so the
//! panic's context names them too). Swapping in the real proptest later is
//! a one-line Cargo.toml change.

use std::ops::{Range, RangeInclusive};

/// Cases generated per property (the real proptest defaults to 256).
pub const CASES: u64 = 64;

/// Deterministic generator state for one test case (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for one (test, case) pair.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Hashes a test name into a stable per-test seed (FNV-1a).
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A source of generated values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy (what [`prop_oneof!`] stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_range_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident => $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => a, B => b);
impl_tuple_strategy!(A => a, B => b, C => c);
impl_tuple_strategy!(A => a, B => b, C => c, D => d);

/// A strategy that always produces a clone of one fixed value (the real
/// proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Produces any value of `T` — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_any_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Choice among boxed alternatives, uniform or weighted — see
/// [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Builds the uniform union of the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Builds a union where each alternative is drawn proportionally to
    /// its weight (the real proptest's `weight => strategy` arms).
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        OneOf {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.options {
            let weight = *weight as u64;
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total_weight, the sum of all arm weights")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Range {
                start: self.size.start,
                end: self.size.end,
            }
            .generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };

    /// The `prop` module alias the real prelude exposes.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::new(__seed ^ (__case.wrapping_mul(0x9E37_79B9)));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Choice among alternative strategies of one value type: uniform
/// (`prop_oneof![a, b]`) or weighted (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::OneOf::weighted(vec![$(($w, Box::new($s) as $crate::BoxedStrategy<_>)),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(Box::new($s) as $crate::BoxedStrategy<_>),+])
    };
}

/// Asserts a property holds for the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ for the generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid directly inside a [`proptest!`] body (it `continue`s the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let v = crate::Strategy::generate(&(0u32..=3), &mut rng);
            assert!(v <= 3);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![(0u64..1).prop_map(|_| 1u8), (0u64..1).prop_map(|_| 2u8)];
        let mut rng = crate::TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[crate::Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        /// The macro itself: vec sizes respect the requested range.
        #[test]
        fn prop_vec_sizes(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
