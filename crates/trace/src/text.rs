//! The human-readable text form of a trace — diffable, greppable, and
//! hand-editable for authoring regression cases.
//!
//! ```text
//! bash-trace v2 nodes=3 seed=47710 workload=sample
//! # node think_ps instructions (L block word | S block word value) [c<latency_ps>]
//! 0 5000 20 L 0x7 3 c180000
//! 2 0 0 S 0x10000000009 0 18446744073709551615
//! ```
//!
//! The first line is the header (`workload=` is always the last field and
//! runs to the end of the line, so names may contain spaces). Lines that
//! are empty or start with `#` are comments. Block addresses print in hex
//! (they encode region layouts), every other number in decimal. A record
//! that carries an issue→complete latency appends it as a final
//! `c<picoseconds>` token; v1 text (which predates completions) parses
//! identically minus that token.

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Duration;
use bash_net::NodeId;

use crate::{Trace, TraceError, TraceRecord, FORMAT_V1, FORMAT_VERSION};

impl Trace {
    /// Renders the text debug form (always the current version).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 24);
        out.push_str(&format!(
            "bash-trace v{FORMAT_VERSION} nodes={} seed={} workload={}\n",
            self.nodes, self.seed, self.workload
        ));
        out.push_str(
            "# node think_ps instructions (L block word | S block word value) [c<latency_ps>]\n",
        );
        for r in &self.records {
            match r.op {
                ProcOp::Load { block, word } => out.push_str(&format!(
                    "{} {} {} L {:#x} {}",
                    r.node.0,
                    r.think.as_ps(),
                    r.instructions,
                    block.0,
                    word
                )),
                ProcOp::Store { block, word, value } => out.push_str(&format!(
                    "{} {} {} S {:#x} {} {}",
                    r.node.0,
                    r.think.as_ps(),
                    r.instructions,
                    block.0,
                    word,
                    value
                )),
            }
            if let Some(lat) = r.completion {
                out.push_str(&format!(" c{}", lat.as_ps()));
            }
            out.push('\n');
        }
        out
    }

    /// Parses (and [`validate`](Trace::validate)s) the text debug form,
    /// either version.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (line_no, header) = lines.next().ok_or(TraceError::BadTextLine {
            line: 1,
            what: "empty input",
        })?;
        let trace_header = parse_header(header).ok_or(TraceError::BadTextLine {
            line: line_no + 1,
            what: "malformed header (expected `bash-trace v2 nodes=N seed=S workload=NAME`)",
        })?;
        let (nodes, seed, workload, version) = trace_header;
        if version != FORMAT_VERSION && version != FORMAT_V1 {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut records = Vec::new();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            records.push(parse_record(trimmed).ok_or(TraceError::BadTextLine {
                line: line_no,
                what: "malformed record",
            })?);
        }
        let trace = Trace {
            nodes,
            seed,
            workload,
            records,
        };
        trace.validate()?;
        Ok(trace)
    }
}

fn parse_header(line: &str) -> Option<(u16, u64, String, u16)> {
    let rest = line.strip_prefix("bash-trace v")?;
    let (version, rest) = rest.split_once(' ')?;
    let version: u16 = version.parse().ok()?;
    let rest = rest.trim_start().strip_prefix("nodes=")?;
    let (nodes, rest) = rest.split_once(' ')?;
    let nodes: u16 = nodes.parse().ok()?;
    let rest = rest.trim_start().strip_prefix("seed=")?;
    let (seed, rest) = rest.split_once(' ')?;
    let seed: u64 = seed.parse().ok()?;
    let workload = rest.trim_start().strip_prefix("workload=")?;
    Some((nodes, seed, workload.to_string(), version))
}

fn parse_u64(token: &str) -> Option<u64> {
    if let Some(hex) = token.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

fn parse_record(line: &str) -> Option<TraceRecord> {
    let mut tok = line.split_ascii_whitespace();
    let node: u16 = tok.next()?.parse().ok()?;
    let think = Duration::from_ps(parse_u64(tok.next()?)?);
    let instructions = parse_u64(tok.next()?)?;
    let kind = tok.next()?;
    let block = BlockAddr(parse_u64(tok.next()?)?);
    let word: usize = tok.next()?.parse().ok()?;
    let op = match kind {
        "L" => ProcOp::Load { block, word },
        "S" => ProcOp::Store {
            block,
            word,
            value: parse_u64(tok.next()?)?,
        },
        _ => return None,
    };
    let completion = match tok.next() {
        None => None,
        Some(t) => Some(Duration::from_ps(parse_u64(t.strip_prefix('c')?)?)),
    };
    if tok.next().is_some() {
        return None;
    }
    Some(TraceRecord {
        node: NodeId(node),
        think,
        instructions,
        op,
        completion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_trace;

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let text = t.to_text();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn completions_print_and_parse() {
        let t = sample_trace();
        let text = t.to_text();
        assert!(text.contains(" c180000"), "latency token missing: {text}");
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.completions(), 1);
    }

    #[test]
    fn v1_text_still_parses() {
        let text = "bash-trace v1 nodes=2 seed=7 workload=legacy\n\
                    0 5000 20 L 0x7 3\n\
                    1 0 0 S 0x9 0 42\n";
        let t = Trace::from_text(text).unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.completions(), 0);
        assert_eq!(t.workload, "legacy");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let t = sample_trace();
        let mut text = t.to_text();
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn workload_names_may_contain_spaces() {
        let mut t = sample_trace();
        t.workload = "OLTP warm run".to_string();
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
    }

    #[test]
    fn bad_header_rejected() {
        let err = Trace::from_text("nonsense\n1 0 0 L 0x0 0\n").unwrap_err();
        assert!(matches!(err, TraceError::BadTextLine { line: 1, .. }));
    }

    #[test]
    fn future_version_rejected() {
        let err = Trace::from_text("bash-trace v9 nodes=1 seed=0 workload=x\n0 0 0 L 0x0 0\n")
            .unwrap_err();
        assert_eq!(err, TraceError::UnsupportedVersion(9));
    }

    #[test]
    fn malformed_record_reports_line() {
        let text = "bash-trace v2 nodes=1 seed=0 workload=x\n0 0 0 Q 0x0 0\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(matches!(err, TraceError::BadTextLine { line: 2, .. }));
    }

    #[test]
    fn malformed_completion_token_reports_line() {
        let text = "bash-trace v2 nodes=1 seed=0 workload=x\n0 0 0 L 0x0 0 zap\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(matches!(err, TraceError::BadTextLine { line: 2, .. }));
    }

    #[test]
    fn text_decode_validates() {
        // Node 5 out of range for a 1-node trace.
        let text = "bash-trace v2 nodes=1 seed=0 workload=x\n5 0 0 L 0x0 0\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(matches!(err, TraceError::NodeOutOfRange { .. }));
    }

    #[test]
    fn binary_and_text_describe_the_same_trace() {
        let t = sample_trace();
        let via_text = Trace::from_text(&t.to_text()).unwrap();
        let via_bin = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(via_text, via_bin);
    }
}
