//! The legacy v1 binary trace encoding.
//!
//! Layout (all multi-byte scalars little-endian, `varint` = LEB128 u64):
//!
//! ```text
//! magic    8  b"BASHTRCE"
//! version  2  u16 (1)
//! nodes    2  u16
//! seed     8  u64
//! name     varint length + UTF-8 bytes
//! count    varint
//! records  count × record
//! checksum 8  u64 FNV-1a over every byte after the magic, before this field
//! ```
//!
//! One record:
//!
//! ```text
//! node         varint
//! think_ps     varint
//! instructions varint
//! kind         1  (0 = Load, 1 = Store)
//! block        varint
//! word         varint
//! value        varint   (Store only)
//! ```
//!
//! **Decode is permanent** — [`Trace::from_bytes`] and
//! [`TraceReader`](crate::TraceReader) recognize the version header and
//! stream v1 payloads forever (the committed v1 compatibility fixture
//! pins this in CI). **Encode survives only as [`Trace::to_bytes_v1`]**:
//! the current writer is the v2 chunked form (module
//! [`stream`](crate::stream)), which adds per-chunk checksums, per-node
//! delta-encoded block addresses, completion latencies and a seekable
//! index — none of which v1 can carry (completions are silently dropped
//! by `to_bytes_v1`).

use bash_coherence::ProcOp;

use crate::wire::{fnv1a, put_varint};
use crate::{Trace, FORMAT_V1};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"BASHTRCE";

const KIND_LOAD: u8 = 0;
const KIND_STORE: u8 = 1;

impl Trace {
    /// Encodes the trace into the legacy v1 binary form — for
    /// compatibility fixtures and size comparisons only; everything else
    /// writes v2 via [`Trace::to_bytes`] or
    /// [`TraceWriter`](crate::TraceWriter).
    ///
    /// v1 has no completion field, so any issue→complete latencies the
    /// trace carries are dropped: `from_bytes(to_bytes_v1(t))` equals `t`
    /// with every `completion` set to `None`.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        // Headers are ~20 bytes + name; records average well under 16.
        let mut out = Vec::with_capacity(32 + self.workload.len() + self.records.len() * 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_V1.to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        put_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        put_varint(&mut out, self.records.len() as u64);
        for r in &self.records {
            put_varint(&mut out, r.node.0 as u64);
            put_varint(&mut out, r.think.as_ps());
            put_varint(&mut out, r.instructions);
            match r.op {
                ProcOp::Load { block, word } => {
                    out.push(KIND_LOAD);
                    put_varint(&mut out, block.0);
                    put_varint(&mut out, word as u64);
                }
                ProcOp::Store { block, word, value } => {
                    out.push(KIND_STORE);
                    put_varint(&mut out, block.0);
                    put_varint(&mut out, word as u64);
                    put_varint(&mut out, value);
                }
            }
        }
        let checksum = fnv1a(&out[MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_trace;
    use crate::TraceError;
    use bash_coherence::BlockAddr;

    fn v1_sample() -> Trace {
        let mut t = sample_trace();
        for r in &mut t.records {
            r.completion = None;
        }
        t
    }

    #[test]
    fn v1_roundtrip_preserves_everything() {
        let t = v1_sample();
        let bytes = t.to_bytes_v1();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn v1_encode_drops_completions() {
        let t = sample_trace();
        assert!(t.completions() > 0);
        let decoded = Trace::from_bytes(&t.to_bytes_v1()).unwrap();
        assert_eq!(decoded.completions(), 0);
        assert_eq!(decoded.records.len(), t.records.len());
    }

    #[test]
    fn v1_encoding_is_compact() {
        let t = v1_sample();
        // Magic+version+nodes+seed = 20 bytes; two small records must stay
        // well under a fixed-width (8 × 8-byte fields) encoding.
        assert!(t.to_bytes_v1().len() < 80, "got {}", t.to_bytes_v1().len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = v1_sample().to_bytes_v1();
        bytes[0] = b'X';
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = v1_sample().to_bytes_v1();
        bytes[8] = 99;
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let t = v1_sample();
        let mut bytes = t.to_bytes_v1();
        // Flip a bit inside the record payload (past the 20-byte header).
        let mid = bytes.len() - 12;
        bytes[mid] ^= 0x40;
        let err = Trace::from_bytes(&bytes).unwrap_err();
        // Depending on which field the flip lands in, decode fails
        // structurally or the checksum catches it; silent success is the
        // only unacceptable outcome.
        assert_ne!(err, TraceError::BadMagic);
    }

    #[test]
    fn checksum_catches_tail_corruption() {
        let t = v1_sample();
        let mut bytes = t.to_bytes_v1();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::ChecksumMismatch));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = v1_sample().to_bytes_v1();
        for cut in [4, 12, 21, bytes.len() - 1] {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = v1_sample().to_bytes_v1();
        bytes.push(0);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::TrailingBytes));
    }

    #[test]
    fn varint_extremes_roundtrip() {
        let mut t = v1_sample();
        t.records[1].op = ProcOp::Store {
            block: BlockAddr(u64::MAX),
            word: 7,
            value: u64::MAX,
        };
        t.records[1].instructions = u64::MAX;
        let bytes = t.to_bytes_v1();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn semantically_invalid_v1_bytes_fail_validation() {
        // v1 encode does not validate, so garbage can be serialized — and
        // the decoder must catch it (the v2 writer refuses at encode time
        // instead).
        let mut t = v1_sample();
        t.records[0].node = bash_net::NodeId(9);
        assert!(matches!(
            Trace::from_bytes(&t.to_bytes_v1()),
            Err(TraceError::NodeOutOfRange { node: 9, .. })
        ));
    }
}
