//! The compact binary trace encoding (format v1).
//!
//! Layout (all multi-byte scalars little-endian, `varint` = LEB128 u64):
//!
//! ```text
//! magic    8  b"BASHTRCE"
//! version  2  u16 (currently 1)
//! nodes    2  u16
//! seed     8  u64
//! name     varint length + UTF-8 bytes
//! count    varint
//! records  count × record
//! checksum 8  u64 FNV-1a over every byte after the magic, before this field
//! ```
//!
//! One record:
//!
//! ```text
//! node         varint
//! think_ps     varint
//! instructions varint
//! kind         1  (0 = Load, 1 = Store)
//! block        varint
//! word         varint
//! value        varint   (Store only)
//! ```
//!
//! Varints keep typical records under ~10 bytes (addresses and think times
//! are small); the checksum turns silent corruption into a hard
//! [`TraceError::ChecksumMismatch`].

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Duration;
use bash_net::NodeId;

use crate::{Trace, TraceError, TraceRecord, FORMAT_VERSION};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"BASHTRCE";

const KIND_LOAD: u8 = 0;
const KIND_STORE: u8 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16_le(&mut self) -> Result<u16, TraceError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self) -> Result<u64, TraceError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(TraceError::BadVarint);
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::BadVarint);
            }
        }
    }
}

impl Trace {
    /// Encodes the trace into the v1 binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Headers are ~20 bytes + name; records average well under 16.
        let mut out = Vec::with_capacity(32 + self.workload.len() + self.records.len() * 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        put_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        put_varint(&mut out, self.records.len() as u64);
        for r in &self.records {
            put_varint(&mut out, r.node.0 as u64);
            put_varint(&mut out, r.think.as_ps());
            put_varint(&mut out, r.instructions);
            match r.op {
                ProcOp::Load { block, word } => {
                    out.push(KIND_LOAD);
                    put_varint(&mut out, block.0);
                    put_varint(&mut out, word as u64);
                }
                ProcOp::Store { block, word, value } => {
                    out.push(KIND_STORE);
                    put_varint(&mut out, block.0);
                    put_varint(&mut out, word as u64);
                    put_varint(&mut out, value);
                }
            }
        }
        let checksum = fnv1a(&out[MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes (and [`validate`](Trace::validate)s) a v1 binary trace.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(MAGIC.len())? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = cur.u16_le()?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let nodes = cur.u16_le()?;
        let seed = cur.u64_le()?;
        let name_len = cur.varint()?;
        let name_len = usize::try_from(name_len).map_err(|_| TraceError::FieldOverflow)?;
        let workload = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| TraceError::BadName)?
            .to_string();
        let count = cur.varint()?;
        let count = usize::try_from(count).map_err(|_| TraceError::FieldOverflow)?;
        // Cap the pre-allocation by what the remaining bytes could possibly
        // hold (≥ 6 bytes per record) so a corrupt count cannot OOM us.
        let remaining = bytes.len().saturating_sub(cur.pos);
        let mut records = Vec::with_capacity(count.min(remaining / 6 + 1));
        for _ in 0..count {
            let node = cur.varint()?;
            let node = u16::try_from(node).map_err(|_| TraceError::FieldOverflow)?;
            let think = Duration::from_ps(cur.varint()?);
            let instructions = cur.varint()?;
            let kind = cur.byte()?;
            let block = BlockAddr(cur.varint()?);
            let word = usize::try_from(cur.varint()?).map_err(|_| TraceError::FieldOverflow)?;
            let op = match kind {
                KIND_LOAD => ProcOp::Load { block, word },
                KIND_STORE => ProcOp::Store {
                    block,
                    word,
                    value: cur.varint()?,
                },
                other => return Err(TraceError::BadOpKind(other)),
            };
            records.push(TraceRecord {
                node: NodeId(node),
                think,
                instructions,
                op,
            });
        }
        let payload_end = cur.pos;
        let stored = cur.u64_le()?;
        if cur.pos != bytes.len() {
            return Err(TraceError::TrailingBytes);
        }
        if fnv1a(&bytes[MAGIC.len()..payload_end]) != stored {
            return Err(TraceError::ChecksumMismatch);
        }
        let trace = Trace {
            nodes,
            seed,
            workload,
            records,
        };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_trace;

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn encoding_is_compact() {
        let t = sample_trace();
        // Magic+version+nodes+seed = 20 bytes; two small records must stay
        // well under a fixed-width (8 × 8-byte fields) encoding.
        assert!(t.to_bytes().len() < 80, "got {}", t.to_bytes().len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes[8] = 99;
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let t = sample_trace();
        let mut bytes = t.to_bytes();
        // Flip a bit inside the record payload (past the 20-byte header).
        let mid = bytes.len() - 12;
        bytes[mid] ^= 0x40;
        let err = Trace::from_bytes(&bytes).unwrap_err();
        // Depending on which field the flip lands in, decode fails
        // structurally or the checksum catches it; silent success is the
        // only unacceptable outcome.
        assert_ne!(err, TraceError::BadMagic);
    }

    #[test]
    fn checksum_catches_tail_corruption() {
        let t = sample_trace();
        let mut bytes = t.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::ChecksumMismatch));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_trace().to_bytes();
        for cut in [4, 12, 21, bytes.len() - 1] {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes.push(0);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::TrailingBytes));
    }

    #[test]
    fn varint_extremes_roundtrip() {
        let mut t = sample_trace();
        t.records[1].op = ProcOp::Store {
            block: BlockAddr(u64::MAX),
            word: 7,
            value: u64::MAX,
        };
        t.records[1].instructions = u64::MAX;
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
    }
}
