//! The v2 chunked binary trace encoding and its streaming reader/writer.
//!
//! Layout (all multi-byte scalars little-endian, `varint` = LEB128 u64):
//!
//! ```text
//! magic      8  b"BASHTRCE"
//! version    2  u16 (currently 2)
//! nodes      2  u16
//! seed       8  u64
//! name       varint length + UTF-8 bytes
//! hdr_cksum  8  u64 FNV-1a over every byte after the magic, before this field
//! chunks     …  see below; an empty chunk (count = 0) terminates the stream
//! index      …  optional trailing chunk index (see below)
//! ```
//!
//! One chunk:
//!
//! ```text
//! count        varint  records in this chunk (0 = terminator, nothing follows)
//! payload_len  varint  byte length of the encoded records
//! payload      …       `count` records, delta-encoded (see below)
//! checksum     8       u64 FNV-1a over the payload bytes
//! ```
//!
//! One record within a chunk payload:
//!
//! ```text
//! node         varint
//! flags        1   bit 0 = kind (0 Load, 1 Store), bit 1 = has completion,
//!                  bit 2 = block field is a per-node delta
//! think_ps     varint
//! instructions varint
//! block        varint  absolute address, or (flag bit 2)
//!                      zigzag(block − previous block of the same node in
//!                      this chunk)
//! word         varint
//! value        varint  (Store only)
//! latency_ps   varint  (flag bit 1 only)
//! ```
//!
//! The per-node delta encoding exploits strided access patterns (most
//! workloads walk small fixed strides per node, so deltas varint-encode in
//! 1–2 bytes where absolute addresses take 3–7). The writer picks
//! whichever of absolute/delta varint-encodes shorter per record — so a
//! v2 block field is **never larger** than v1's always-absolute one, and
//! patterns that alternate between far-apart regions do not regress.
//! Resetting the delta state at every chunk boundary keeps each chunk
//! independently decodable, which is what makes the trailing index
//! useful. A delta flag on a node's first record in a chunk is a decode
//! error ([`TraceError::BadOpKind`]) — there is nothing to delta from.
//!
//! The optional index (written by default, skipped by
//! [`TraceWriter::index`]`(false)`):
//!
//! ```text
//! entry_count  varint  number of chunks
//! entries      …       per chunk: offset-delta varint (from the previous
//!                      chunk's offset; chunk 0's offset is 0, relative to
//!                      the first byte after the header checksum), then
//!                      record-count varint
//! checksum     8       u64 FNV-1a over entry_count + entries
//! index_len    4       u32: bytes from entry_count through checksum
//! index_magic  4       b"BTIX"
//! ```
//!
//! The fixed-size tail lets a seekable consumer ([`SeekableTrace`]) find
//! the index from the end of the file without scanning the chunks, then
//! jump straight to the chunk containing any record — seekable replay.

use std::io::{Read, Seek, SeekFrom, Write};

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Duration;
use bash_net::NodeId;

use crate::wire::{fnv1a, io_err, put_varint, unzigzag, zigzag, ByteReader, ByteWriter, Fnv1a};
use crate::{validate_record, Trace, TraceError, TraceRecord, FORMAT_V1, FORMAT_VERSION};

/// The 8-byte file magic (shared by v1 and v2).
pub use crate::binary::MAGIC;

/// The 4-byte trailer magic closing the optional chunk index.
pub const INDEX_MAGIC: [u8; 4] = *b"BTIX";

/// Records per chunk unless overridden with
/// [`TraceWriter::chunk_records`] — the streaming unit: readers buffer at
/// most one chunk, and the minimizer drops failing traces in windows of
/// this size first.
pub const DEFAULT_CHUNK_RECORDS: usize = 1024;

/// Flag bit 0: the record is a store.
const FLAG_STORE: u8 = 0b001;
/// Flag bit 1: the record carries an issue→complete latency.
const FLAG_COMPLETION: u8 = 0b010;
/// Flag bit 2: the block field is a zigzag delta from the same node's
/// previous block in this chunk (chosen only when strictly shorter than
/// the absolute encoding).
const FLAG_DELTA: u8 = 0b100;

/// Encoded length of a LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// The smallest possible encoded record (all fields one byte).
const MIN_RECORD_BYTES: u64 = 6;
/// The largest possible encoded record (maximal varints everywhere).
const MAX_RECORD_BYTES: u64 = 64;

/// Everything the fixed-size part of a trace header says, available from
/// a [`TraceReader`] before any record has been decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version of the underlying stream (1 or 2).
    pub version: u16,
    /// System size the trace was captured on.
    pub nodes: u16,
    /// RNG seed of the capturing run.
    pub seed: u64,
    /// Display name of the captured workload.
    pub workload: String,
}

/// One entry of the trailing chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk, relative to the first byte after the
    /// header checksum.
    pub offset: u64,
    /// Global index of the chunk's first record.
    pub first_record: u64,
    /// Records in the chunk.
    pub count: u64,
}

/// The trailing chunk index of a v2 trace: where every chunk starts and
/// which records it holds, enabling seekable replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkIndex {
    /// Per-chunk entries, in file order.
    pub entries: Vec<ChunkEntry>,
}

impl ChunkIndex {
    /// Total records across all chunks.
    pub fn total_records(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// The position of the chunk containing global record `record` — the
    /// one containment search every lookup goes through. Entries are
    /// sorted by `first_record` (chunks are contiguous in file order), so
    /// this is a binary search: a multi-GB trace's million-entry index
    /// answers in ~20 comparisons.
    pub fn locate_index(&self, record: u64) -> Option<usize> {
        let i = self
            .entries
            .partition_point(|e| e.first_record + e.count <= record);
        (i < self.entries.len() && record >= self.entries[i].first_record).then_some(i)
    }

    /// The entry of the chunk containing global record `record`, if any.
    pub fn locate(&self, record: u64) -> Option<&ChunkEntry> {
        self.locate_index(record).map(|i| &self.entries[i])
    }
}

// ---------------------------------------------------------------- writer

/// The streaming v2 encoder: feed records one at a time, get chunked,
/// checksummed, delta-encoded bytes on any [`Write`] — a multi-GB capture
/// never lives in memory.
///
/// ```
/// use bash_trace::{TraceWriter, TraceReader, TraceRecord};
/// use bash_coherence::{BlockAddr, ProcOp};
/// use bash_kernel::Duration;
/// use bash_net::NodeId;
///
/// let mut w = TraceWriter::new(Vec::new(), 2, 42, "demo").unwrap();
/// w.write(TraceRecord {
///     node: NodeId(0),
///     think: Duration::from_ns(5),
///     instructions: 20,
///     op: ProcOp::Load { block: BlockAddr(7), word: 3 },
///     completion: None,
/// }).unwrap();
/// let bytes = w.finish().unwrap();
/// let trace = TraceReader::new(&bytes[..]).unwrap().into_trace().unwrap();
/// assert_eq!(trace.records.len(), 1);
/// ```
pub struct TraceWriter<W: Write> {
    out: ByteWriter<W>,
    nodes: u16,
    chunk_records: usize,
    write_index: bool,
    /// Encoded records of the chunk being assembled.
    buf: Vec<u8>,
    buf_count: usize,
    /// Per-node previous block address, reset at every chunk boundary so
    /// chunks decode independently.
    last_block: Vec<Option<u64>>,
    records_written: u64,
    /// (offset, count) of every flushed chunk, for the trailing index.
    chunks: Vec<(u64, u64)>,
    /// `out.written()` right after the header — offsets are relative to it.
    data_start: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the v2 header to `out` and returns the writer.
    ///
    /// # Errors
    ///
    /// [`TraceError::ZeroNodes`] for an empty system, [`TraceError::Io`]
    /// when the sink rejects the header.
    pub fn new(
        out: W,
        nodes: u16,
        seed: u64,
        workload: impl Into<String>,
    ) -> Result<Self, TraceError> {
        if nodes == 0 {
            return Err(TraceError::ZeroNodes);
        }
        let workload = workload.into();
        let mut out = ByteWriter::new(out);
        out.write_all(&MAGIC)?;
        let mut header = Vec::with_capacity(16 + workload.len());
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&nodes.to_le_bytes());
        header.extend_from_slice(&seed.to_le_bytes());
        put_varint(&mut header, workload.len() as u64);
        header.extend_from_slice(workload.as_bytes());
        out.write_all(&header)?;
        out.write_all(&fnv1a(&header).to_le_bytes())?;
        let data_start = out.written();
        Ok(TraceWriter {
            out,
            nodes,
            chunk_records: DEFAULT_CHUNK_RECORDS,
            write_index: true,
            buf: Vec::with_capacity(DEFAULT_CHUNK_RECORDS * 12),
            buf_count: 0,
            last_block: vec![None; nodes as usize],
            records_written: 0,
            chunks: Vec::new(),
            data_start,
        })
    }

    /// Overrides the records-per-chunk granularity (must be ≥ 1). Smaller
    /// chunks seek finer and recover more from corruption; larger chunks
    /// amortize the 10–20 byte per-chunk overhead and give the delta
    /// encoder longer runs.
    pub fn chunk_records(mut self, records: usize) -> Self {
        assert!(records >= 1, "chunks hold at least one record");
        self.chunk_records = records;
        self
    }

    /// Enables or disables the trailing chunk index (on by default).
    pub fn index(mut self, on: bool) -> Self {
        self.write_index = on;
        self
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.records_written
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.records_written == 0
    }

    /// Encodes one record, flushing a full chunk to the sink.
    ///
    /// # Errors
    ///
    /// The record is validated against the header (node range, word
    /// range) before anything is written; I/O failures surface as
    /// [`TraceError::Io`].
    pub fn write(&mut self, r: TraceRecord) -> Result<(), TraceError> {
        validate_record(&r, self.records_written as usize, self.nodes)?;
        let (block, word, value) = match r.op {
            ProcOp::Load { block, word } => (block, word, None),
            ProcOp::Store { block, word, value } => (block, word, Some(value)),
        };
        let mut flags = 0u8;
        if value.is_some() {
            flags |= FLAG_STORE;
        }
        if r.completion.is_some() {
            flags |= FLAG_COMPLETION;
        }
        // Adaptive block field: delta only when it is strictly shorter
        // than the absolute address, so no access pattern can regress
        // past the v1 encoding.
        let prev = &mut self.last_block[r.node.index()];
        let mut block_field = block.0;
        if let Some(p) = *prev {
            let delta = zigzag(block.0.wrapping_sub(p) as i64);
            if varint_len(delta) < varint_len(block.0) {
                flags |= FLAG_DELTA;
                block_field = delta;
            }
        }
        *prev = Some(block.0);
        let buf = &mut self.buf;
        put_varint(buf, r.node.0 as u64);
        buf.push(flags);
        put_varint(buf, r.think.as_ps());
        put_varint(buf, r.instructions);
        put_varint(buf, block_field);
        put_varint(buf, word as u64);
        if let Some(v) = value {
            put_varint(buf, v);
        }
        if let Some(lat) = r.completion {
            put_varint(buf, lat.as_ps());
        }
        self.buf_count += 1;
        self.records_written += 1;
        if self.buf_count >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.buf_count == 0 {
            return Ok(());
        }
        let offset = self.out.written() - self.data_start;
        let mut head = Vec::with_capacity(16);
        put_varint(&mut head, self.buf_count as u64);
        put_varint(&mut head, self.buf.len() as u64);
        self.out.write_all(&head)?;
        self.out.write_all(&self.buf)?;
        self.out.write_all(&fnv1a(&self.buf).to_le_bytes())?;
        self.chunks.push((offset, self.buf_count as u64));
        self.buf.clear();
        self.buf_count = 0;
        self.last_block.fill(None);
        Ok(())
    }

    /// Flushes the final partial chunk, writes the terminator and the
    /// trailing index, and hands the sink back.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_chunk()?;
        self.out.write_all(&[0])?; // terminator: an empty chunk
        if self.write_index {
            let mut payload = Vec::with_capacity(4 + self.chunks.len() * 4);
            put_varint(&mut payload, self.chunks.len() as u64);
            let mut prev = 0u64;
            for &(offset, count) in &self.chunks {
                put_varint(&mut payload, offset - prev);
                put_varint(&mut payload, count);
                prev = offset;
            }
            let checksum = fnv1a(&payload);
            let index_len = (payload.len() + 8) as u32;
            self.out.write_all(&payload)?;
            self.out.write_all(&checksum.to_le_bytes())?;
            self.out.write_all(&index_len.to_le_bytes())?;
            self.out.write_all(&INDEX_MAGIC)?;
        }
        Ok(self.out.into_inner())
    }
}

// ---------------------------------------------------------------- reader

/// Both versions decode through the same reader; v1 has no chunks, so the
/// mode tracks what bookkeeping the trailer needs.
enum Mode {
    /// v1: a known record count followed by a whole-payload checksum that
    /// has been accumulating since the version field.
    V1 { remaining: u64 },
    V2 {
        /// Records decoded but not yet handed out (at most one chunk).
        pending: std::collections::VecDeque<TraceRecord>,
        /// Chunks fully read so far.
        chunks_read: u64,
        /// Rolling FNV-1a over every read chunk's `(offset, count)` pair
        /// (16 LE bytes each) — O(1)-memory bookkeeping the trailing
        /// index is cross-checked against, instead of storing a pair per
        /// chunk (which would grow with the trace and break the
        /// one-chunk memory bound).
        chunks_fnv: Fnv1a,
        /// `consumed()` right after the header.
        data_start: u64,
    },
}

/// Reads the fields both versions share — magic, version (1 or 2),
/// nodes, seed, workload name — leaving the source's running hash
/// started at the version field, as both versions' checksums require.
/// The one header parser: [`TraceReader::new`] and
/// [`SeekableTrace::open`] both go through here.
fn read_common_header<R: Read>(src: &mut ByteReader<R>) -> Result<TraceHeader, TraceError> {
    let mut magic = [0u8; 8];
    src.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    // v1's trailer checksum covers everything from the version field on;
    // start accumulating before we know the version. v2 stops this hash
    // at its header checksum instead.
    src.start_hash();
    let version = src.u16_le()?;
    if version != FORMAT_V1 && version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let nodes = src.u16_le()?;
    let seed = src.u64_le()?;
    let name_len = src.varint()?;
    let name_len = usize::try_from(name_len).map_err(|_| TraceError::FieldOverflow)?;
    if name_len > 1 << 20 {
        return Err(TraceError::FieldOverflow);
    }
    let mut name = vec![0u8; name_len];
    src.read_exact(&mut name)?;
    let workload = String::from_utf8(name).map_err(|_| TraceError::BadName)?;
    if nodes == 0 {
        return Err(TraceError::ZeroNodes);
    }
    Ok(TraceHeader {
        version,
        nodes,
        seed,
        workload,
    })
}

/// Finishes a v2 header: verifies the header checksum (stopping the hash
/// `read_common_header` started) and returns the data-start offset.
fn check_v2_header_checksum<R: Read>(src: &mut ByteReader<R>) -> Result<u64, TraceError> {
    let computed = src.take_hash();
    let stored = src.u64_le()?;
    if computed != stored {
        return Err(TraceError::ChecksumMismatch);
    }
    Ok(src.consumed())
}

/// The streaming decoder: pull records one at a time off any [`Read`] —
/// including a v1 buffer — without materializing the trace. Implements
/// [`Iterator`] over `Result<TraceRecord, TraceError>`; after an error the
/// iterator is fused. Memory use is bounded by one chunk regardless of
/// trace size.
pub struct TraceReader<R: Read> {
    src: ByteReader<R>,
    header: TraceHeader,
    mode: Mode,
    record_idx: usize,
    index: Option<ChunkIndex>,
    done: bool,
    errored: bool,
    /// Skip-and-resume on per-chunk corruption instead of erroring (see
    /// [`recovering`](Self::recovering)).
    recover: bool,
    /// Chunks skipped by recovering mode.
    skipped: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header (either version).
    pub fn new(inner: R) -> Result<Self, TraceError> {
        let mut src = ByteReader::new(inner);
        let header = read_common_header(&mut src)?;
        let mode = if header.version == FORMAT_V1 {
            let remaining = src.varint()?;
            Mode::V1 { remaining }
        } else {
            Mode::V2 {
                pending: std::collections::VecDeque::new(),
                chunks_read: 0,
                chunks_fnv: Fnv1a::new(),
                data_start: check_v2_header_checksum(&mut src)?,
            }
        };
        Ok(TraceReader {
            src,
            header,
            mode,
            record_idx: 0,
            index: None,
            done: false,
            errored: false,
            recover: false,
            skipped: 0,
        })
    }

    /// Switches this reader to **recovering** mode: a v2 chunk whose
    /// payload checksum fails (or whose checksummed payload still refuses
    /// to decode) is *skipped* — the reader resumes at the next chunk
    /// boundary and counts the loss in [`skipped_chunks`](Self::skipped_chunks)
    /// — instead of poisoning the whole stream. Chunk framing stays
    /// load-bearing: a corrupt count or payload-length varint (the bytes
    /// that say where the next boundary *is*) remains a hard error, as
    /// does every v1 failure (v1 has no chunk boundaries to resume at).
    /// The trailing-index cross-check still runs against the *declared*
    /// chunk framing, so an index that disagrees with the file is still
    /// rejected even when payloads were skipped.
    pub fn recovering(mut self) -> Self {
        self.recover = true;
        self
    }

    /// Chunks recovering mode skipped over corruption (0 in strict mode
    /// or on a healthy trace). Final only once the stream is exhausted.
    pub fn skipped_chunks(&self) -> u64 {
        self.skipped
    }

    /// The decoded header: version, node count, seed and workload name.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> usize {
        self.record_idx
    }

    /// Byte offset of the first chunk — the anchor every chunk-index
    /// offset is relative to (`None` for v1 traces, which have no
    /// chunks).
    pub fn data_start(&self) -> Option<u64> {
        match &self.mode {
            Mode::V2 { data_start, .. } => Some(*data_start),
            Mode::V1 { .. } => None,
        }
    }

    /// The trailing chunk index, available once the stream has been fully
    /// consumed (`None` for v1 traces or index-less v2 traces).
    pub fn index(&self) -> Option<&ChunkIndex> {
        self.index.as_ref()
    }

    /// Drains the remaining records into an owned, validated [`Trace`].
    pub fn into_trace(mut self) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        for r in &mut self {
            records.push(r?);
        }
        let trace = Trace {
            nodes: self.header.nodes,
            seed: self.header.seed,
            workload: self.header.workload,
            records,
        };
        // Per-record checks already ran during decode; this adds the
        // whole-trace invariants (primarily non-emptiness).
        trace.validate()?;
        Ok(trace)
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        match &mut self.mode {
            Mode::V1 { remaining } => {
                if *remaining == 0 {
                    // Everything from the version field through the last
                    // record is hashed; the trailer follows, unhashed.
                    let computed = self.src.take_hash();
                    let stored = self.src.u64_le()?;
                    if computed != stored {
                        return Err(TraceError::ChecksumMismatch);
                    }
                    if self.src.byte_or_eof()?.is_some() {
                        return Err(TraceError::TrailingBytes);
                    }
                    self.done = true;
                    return Ok(None);
                }
                *remaining -= 1;
                let r = decode_v1_record(&mut self.src, self.record_idx, self.header.nodes)?;
                self.record_idx += 1;
                Ok(Some(r))
            }
            Mode::V2 {
                pending,
                chunks_read,
                chunks_fnv,
                data_start,
            } => {
                if let Some(r) = pending.pop_front() {
                    self.record_idx += 1;
                    return Ok(Some(r));
                }
                loop {
                    let offset = self.src.consumed() - *data_start;
                    let count = self.src.varint()?;
                    if count == 0 {
                        self.index =
                            read_trailing_index(&mut self.src, *chunks_read, chunks_fnv.finish())?;
                        self.done = true;
                        return Ok(None);
                    }
                    let decoded = if self.recover {
                        decode_chunk_body_recovering(
                            &mut self.src,
                            *chunks_read as usize,
                            count,
                            self.record_idx as u64,
                            self.header.nodes,
                        )?
                    } else {
                        Some(decode_chunk_body(
                            &mut self.src,
                            *chunks_read as usize,
                            count,
                            self.record_idx as u64,
                            self.header.nodes,
                        )?)
                    };
                    // Skipped or not, the chunk's *declared* framing feeds
                    // the fingerprint — the trailing index describes the
                    // file's layout, which skipping does not change.
                    *chunks_read += 1;
                    chunks_fnv.update(&offset.to_le_bytes());
                    chunks_fnv.update(&count.to_le_bytes());
                    let Some(decoded) = decoded else {
                        self.skipped += 1;
                        continue;
                    };
                    pending.extend(decoded);
                    if let Some(r) = pending.pop_front() {
                        self.record_idx += 1;
                        return Ok(Some(r));
                    }
                }
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.errored {
            return None;
        }
        match self.next_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.errored = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes one v1 record (the legacy non-delta layout).
fn decode_v1_record<R: Read>(
    src: &mut ByteReader<R>,
    index: usize,
    nodes: u16,
) -> Result<TraceRecord, TraceError> {
    let node = src.varint()?;
    let node = u16::try_from(node).map_err(|_| TraceError::FieldOverflow)?;
    let think = Duration::from_ps(src.varint()?);
    let instructions = src.varint()?;
    let kind = src.byte()?;
    let block = BlockAddr(src.varint()?);
    let word = usize::try_from(src.varint()?).map_err(|_| TraceError::FieldOverflow)?;
    let op = match kind {
        0 => ProcOp::Load { block, word },
        1 => ProcOp::Store {
            block,
            word,
            value: src.varint()?,
        },
        other => return Err(TraceError::BadOpKind(other)),
    };
    let r = TraceRecord {
        node: NodeId(node),
        think,
        instructions,
        op,
        completion: None,
    };
    validate_record(&r, index, nodes)?;
    Ok(r)
}

/// Decodes one chunk's payload + checksum (the count varint has already
/// been consumed). Shared by the streaming reader and [`SeekableTrace`].
fn decode_chunk_body<R: Read>(
    src: &mut ByteReader<R>,
    chunk: usize,
    count: u64,
    base_record: u64,
    nodes: u16,
) -> Result<Vec<TraceRecord>, TraceError> {
    let payload_len = src.varint()?;
    if payload_len < count.saturating_mul(MIN_RECORD_BYTES) {
        return Err(TraceError::BadChunk {
            chunk,
            what: "payload too short for its record count",
        });
    }
    if payload_len > count.saturating_mul(MAX_RECORD_BYTES) {
        return Err(TraceError::BadChunk {
            chunk,
            what: "payload too long for its record count",
        });
    }
    let count = usize::try_from(count).map_err(|_| TraceError::FieldOverflow)?;
    src.start_hash();
    let payload_start = src.consumed();
    let mut last_block: Vec<Option<u64>> = vec![None; nodes as usize];
    // The count is corruption-controlled until the payload proves it, so
    // cap the pre-allocation: a crafted header must produce a typed
    // decode error (Truncated/BadChunk), never a failed multi-terabyte
    // allocation. The vector still grows to any genuine count.
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let r = decode_v2_record(src, &mut last_block, base_record as usize + i, nodes)?;
        if src.consumed() - payload_start > payload_len {
            return Err(TraceError::BadChunk {
                chunk,
                what: "record ran past the declared payload length",
            });
        }
        records.push(r);
    }
    if src.consumed() - payload_start != payload_len {
        return Err(TraceError::BadChunk {
            chunk,
            what: "payload length disagrees with its records",
        });
    }
    let computed = src.take_hash();
    let stored = src.u64_le()?;
    if computed != stored {
        return Err(TraceError::ChunkChecksumMismatch { chunk });
    }
    Ok(records)
}

/// The recovering variant of [`decode_chunk_body`]: buffers the declared
/// payload plus its checksum, verifies the checksum *first*, and only
/// then decodes — so a rotted payload is skipped (`Ok(None)`) with the
/// source already positioned at the next chunk boundary. Structural
/// corruption stays a hard error: the payload-length plausibility bounds
/// (which also cap the allocation) and a truncated source give the reader
/// no boundary to resume at.
fn decode_chunk_body_recovering<R: Read>(
    src: &mut ByteReader<R>,
    chunk: usize,
    count: u64,
    base_record: u64,
    nodes: u16,
) -> Result<Option<Vec<TraceRecord>>, TraceError> {
    let payload_len = src.varint()?;
    if payload_len < count.saturating_mul(MIN_RECORD_BYTES) {
        return Err(TraceError::BadChunk {
            chunk,
            what: "payload too short for its record count",
        });
    }
    if payload_len > count.saturating_mul(MAX_RECORD_BYTES) {
        return Err(TraceError::BadChunk {
            chunk,
            what: "payload too long for its record count",
        });
    }
    let payload_len = usize::try_from(payload_len).map_err(|_| TraceError::FieldOverflow)?;
    let mut payload = vec![0u8; payload_len];
    src.read_exact(&mut payload)?;
    let stored = src.u64_le()?;
    if fnv1a(&payload) != stored {
        return Ok(None);
    }
    // The checksum vouches for the bytes; a decode failure past this
    // point means the chunk was *written* corrupt. Skip it all the same —
    // recovering mode promises forward progress over any one bad chunk.
    let count = usize::try_from(count).map_err(|_| TraceError::FieldOverflow)?;
    let mut br = ByteReader::new(&payload[..]);
    let mut last_block: Vec<Option<u64>> = vec![None; nodes as usize];
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        match decode_v2_record(&mut br, &mut last_block, base_record as usize + i, nodes) {
            Ok(r) => records.push(r),
            Err(_) => return Ok(None),
        }
    }
    match br.byte_or_eof() {
        Ok(None) => Ok(Some(records)),
        // Leftover payload bytes: the count and payload disagree.
        Ok(Some(_)) | Err(_) => Ok(None),
    }
}

/// Decodes one v2 record from a chunk payload, updating the per-node
/// delta state.
fn decode_v2_record<R: Read>(
    src: &mut ByteReader<R>,
    last_block: &mut [Option<u64>],
    index: usize,
    nodes: u16,
) -> Result<TraceRecord, TraceError> {
    let node = src.varint()?;
    let node = u16::try_from(node).map_err(|_| TraceError::FieldOverflow)?;
    let flags = src.byte()?;
    if flags & !(FLAG_STORE | FLAG_COMPLETION | FLAG_DELTA) != 0 {
        return Err(TraceError::BadOpKind(flags));
    }
    let think = Duration::from_ps(src.varint()?);
    let instructions = src.varint()?;
    let raw_block = src.varint()?;
    // The delta state is per-node, so an out-of-range node must fail
    // before it indexes the state table.
    if node >= nodes {
        return Err(TraceError::NodeOutOfRange {
            record: index,
            node,
            nodes,
        });
    }
    let prev = &mut last_block[node as usize];
    let block = if flags & FLAG_DELTA != 0 {
        // A delta needs a predecessor; a first-in-chunk delta flag is a
        // malformed record, not a zero base.
        let p = prev.ok_or(TraceError::BadOpKind(flags))?;
        p.wrapping_add(unzigzag(raw_block) as u64)
    } else {
        raw_block
    };
    *prev = Some(block);
    let word = usize::try_from(src.varint()?).map_err(|_| TraceError::FieldOverflow)?;
    let op = if flags & FLAG_STORE != 0 {
        ProcOp::Store {
            block: BlockAddr(block),
            word,
            value: src.varint()?,
        }
    } else {
        ProcOp::Load {
            block: BlockAddr(block),
            word,
        }
    };
    let completion = if flags & FLAG_COMPLETION != 0 {
        Some(Duration::from_ps(src.varint()?))
    } else {
        None
    };
    let r = TraceRecord {
        node: NodeId(node),
        think,
        instructions,
        op,
        completion,
    };
    validate_record(&r, index, nodes)?;
    Ok(r)
}

/// Parses `entry_count` index entries off any byte source, rebuilding
/// absolute offsets and cumulative first-record numbers from the
/// delta/count varint pairs. The one entry parser — the streaming
/// trailing-index read and [`SeekableTrace::open`] both go through here.
fn parse_index_entries<R: Read>(
    src: &mut ByteReader<R>,
    entry_count: usize,
) -> Result<Vec<ChunkEntry>, TraceError> {
    let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
    let mut offset = 0u64;
    let mut first_record = 0u64;
    for i in 0..entry_count {
        let delta = src.varint()?;
        let count = src.varint()?;
        if count == 0 {
            return Err(TraceError::BadIndex("entry with zero records"));
        }
        offset = if i == 0 {
            delta
        } else {
            offset
                .checked_add(delta)
                .ok_or(TraceError::BadIndex("offset overflow"))?
        };
        entries.push(ChunkEntry {
            offset,
            first_record,
            count,
        });
        first_record = first_record
            .checked_add(count)
            .ok_or(TraceError::BadIndex("record count overflow"))?;
    }
    Ok(entries)
}

/// Rolling FNV-1a over `(offset, count)` pairs — the canonical chunk
/// fingerprint the reader accumulates while decoding and the trailing
/// index must reproduce.
fn chunk_pairs_fnv<'a>(pairs: impl Iterator<Item = (&'a u64, &'a u64)>) -> u64 {
    let mut fnv = Fnv1a::new();
    for (offset, count) in pairs {
        fnv.update(&offset.to_le_bytes());
        fnv.update(&count.to_le_bytes());
    }
    fnv.finish()
}

/// Parses (and cross-checks) the optional trailing index right after the
/// terminator chunk. Returns `None` at a clean EOF (index-less trace).
/// `chunks_read`/`chunks_fnv` are the reader's O(1) bookkeeping of the
/// chunks it actually decoded; an index entry that disagrees with any of
/// them changes the fingerprint and is rejected.
fn read_trailing_index<R: Read>(
    src: &mut ByteReader<R>,
    chunks_read: u64,
    chunks_fnv: u64,
) -> Result<Option<ChunkIndex>, TraceError> {
    let first = match src.byte_or_eof()? {
        None => return Ok(None),
        Some(b) => b,
    };
    src.start_hash();
    src.hash_extra(&[first]);
    let payload_start = src.consumed() - 1;
    let entry_count = src.varint_cont(first)?;
    if entry_count != chunks_read {
        return Err(TraceError::BadIndex("entry count disagrees with chunks"));
    }
    let entry_count = usize::try_from(entry_count).map_err(|_| TraceError::FieldOverflow)?;
    let entries = parse_index_entries(src, entry_count)?;
    if chunk_pairs_fnv(entries.iter().map(|e| (&e.offset, &e.count))) != chunks_fnv {
        return Err(TraceError::BadIndex("entry disagrees with its chunk"));
    }
    let payload_len = src.consumed() - payload_start;
    let computed = src.take_hash();
    let stored = src.u64_le()?;
    if computed != stored {
        return Err(TraceError::ChecksumMismatch);
    }
    let index_len = src.u32_le()?;
    if index_len as u64 != payload_len + 8 {
        return Err(TraceError::BadIndex("trailer length disagrees"));
    }
    let mut magic = [0u8; 4];
    src.read_exact(&mut magic)?;
    if magic != INDEX_MAGIC {
        return Err(TraceError::BadIndex("bad trailer magic"));
    }
    if src.byte_or_eof()?.is_some() {
        return Err(TraceError::TrailingBytes);
    }
    Ok(Some(ChunkIndex { entries }))
}

// ------------------------------------------------------------- seekable

/// Random access over an indexed v2 trace on any `Read + Seek` source:
/// reads the header and the trailing index up front (never the chunks in
/// between), then decodes individual chunks on demand — seekable replay
/// for traces that do not fit in memory.
pub struct SeekableTrace<R: Read + Seek> {
    src: R,
    header: TraceHeader,
    index: ChunkIndex,
    /// Absolute file offset of the first chunk.
    data_start: u64,
}

impl<R: Read + Seek> SeekableTrace<R> {
    /// Opens an indexed v2 trace: reads the header, then jumps to the
    /// fixed-size tail to load the chunk index.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadIndex`] when the trace has no trailing index (use
    /// the sequential [`TraceReader`] instead), plus the usual decode
    /// errors for a corrupt header or index.
    pub fn open(mut src: R) -> Result<Self, TraceError> {
        let (header, data_start) = {
            let mut br = ByteReader::new(&mut src);
            let header = read_common_header(&mut br)?;
            if header.version != FORMAT_VERSION {
                // v1 decodes fine — sequentially. It has no chunk index,
                // so seekable access specifically cannot serve it.
                return Err(TraceError::BadIndex(
                    "v1 traces have no chunk index; use TraceReader",
                ));
            }
            let data_start = check_v2_header_checksum(&mut br)?;
            (header, data_start)
        };

        // The fixed-size tail: … index_len(4) magic(4) EOF.
        let end = src.seek(SeekFrom::End(0)).map_err(io_err)?;
        if end < 8 {
            return Err(TraceError::Truncated);
        }
        src.seek(SeekFrom::End(-8)).map_err(io_err)?;
        let mut tail = [0u8; 8];
        src.read_exact(&mut tail).map_err(io_err)?;
        let index_len = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) as u64;
        if tail[4..] != INDEX_MAGIC {
            return Err(TraceError::BadIndex("no trailing index"));
        }
        if !(9..=1 << 24).contains(&index_len) || index_len + 8 > end - data_start {
            return Err(TraceError::BadIndex("implausible trailer length"));
        }
        src.seek(SeekFrom::End(-8 - index_len as i64))
            .map_err(io_err)?;
        let mut payload = vec![0u8; index_len as usize - 8];
        src.read_exact(&mut payload).map_err(io_err)?;
        let mut cksum = [0u8; 8];
        src.read_exact(&mut cksum).map_err(io_err)?;
        if fnv1a(&payload) != u64::from_le_bytes(cksum) {
            return Err(TraceError::ChecksumMismatch);
        }
        let mut br = ByteReader::new(&payload[..]);
        let entry_count = br.varint()?;
        let entry_count = usize::try_from(entry_count).map_err(|_| TraceError::FieldOverflow)?;
        let entries = parse_index_entries(&mut br, entry_count)?;
        if br.byte_or_eof()?.is_some() {
            return Err(TraceError::BadIndex("trailing bytes in index payload"));
        }
        Ok(SeekableTrace {
            src,
            header,
            index: ChunkIndex { entries },
            data_start,
        })
    }

    /// The trace header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The chunk index.
    pub fn index(&self) -> &ChunkIndex {
        &self.index
    }

    /// Decodes chunk `i` (0-based, in file order) in isolation.
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<TraceRecord>, TraceError> {
        let entry = *self
            .index
            .entries
            .get(i)
            .ok_or(TraceError::BadIndex("chunk out of range"))?;
        self.src
            .seek(SeekFrom::Start(self.data_start + entry.offset))
            .map_err(io_err)?;
        let mut br = ByteReader::new(&mut self.src);
        let count = br.varint()?;
        if count != entry.count {
            return Err(TraceError::BadChunk {
                chunk: i,
                what: "record count disagrees with the index",
            });
        }
        decode_chunk_body(&mut br, i, count, entry.first_record, self.header.nodes)
    }

    /// Decodes the chunk containing global record `record` and returns it
    /// with the in-chunk position of that record.
    pub fn read_around(&mut self, record: u64) -> Result<(Vec<TraceRecord>, usize), TraceError> {
        let i = self
            .index
            .locate_index(record)
            .ok_or(TraceError::BadIndex("record out of range"))?;
        let within = (record - self.index.entries[i].first_record) as usize;
        Ok((self.read_chunk(i)?, within))
    }
}

impl Trace {
    /// Encodes the trace into the v2 chunked binary form (with a trailing
    /// index), in memory. The streaming equivalent is [`TraceWriter`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TraceWriter::new(
            Vec::with_capacity(32 + self.workload.len() + self.records.len() * 12),
            self.nodes,
            self.seed,
            self.workload.clone(),
        )
        .expect("zero-node trace handed to to_bytes");
        for r in &self.records {
            // An invalid record cannot be encoded; to_bytes mirrors the
            // historical v1 contract of encoding whatever it is given, so
            // panicking here (not erroring) keeps misuse loud.
            w.write(*r).expect("invalid record handed to to_bytes");
        }
        w.finish().expect("writing to a Vec cannot fail")
    }

    /// Decodes (and validates) a binary trace of either version. The
    /// streaming equivalent is [`TraceReader`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        TraceReader::new(bytes)?.into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_trace;
    use std::io::Cursor;

    fn strided_trace(records: usize) -> Trace {
        Trace {
            nodes: 4,
            seed: 9,
            workload: "strided".to_string(),
            records: (0..records)
                .map(|i| {
                    let node = (i % 4) as u16;
                    TraceRecord {
                        node: NodeId(node),
                        think: Duration::from_ns(3),
                        instructions: 12,
                        op: if i % 3 == 0 {
                            ProcOp::Store {
                                block: BlockAddr(
                                    0x4000_0000 + node as u64 * 0x1000 + (i as u64 / 4) * 2,
                                ),
                                word: i % 8,
                                value: i as u64,
                            }
                        } else {
                            ProcOp::Load {
                                block: BlockAddr(
                                    0x4000_0000 + node as u64 * 0x1000 + (i as u64 / 4) * 2,
                                ),
                                word: i % 8,
                            }
                        },
                        completion: (i % 2 == 0).then(|| Duration::from_ns(100 + i as u64)),
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn v2_roundtrip_preserves_everything() {
        for t in [sample_trace(), strided_trace(777)] {
            let bytes = t.to_bytes();
            assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
        }
    }

    #[test]
    fn streaming_writer_matches_in_memory_encoder() {
        let t = strided_trace(300);
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone()).unwrap();
        for r in &t.records {
            w.write(*r).unwrap();
        }
        assert_eq!(w.len(), 300);
        let streamed = w.finish().unwrap();
        assert_eq!(streamed, t.to_bytes(), "streamed bytes != in-memory bytes");
    }

    #[test]
    fn chunking_is_invisible_to_the_decoder() {
        let t = strided_trace(100);
        for chunk in [1usize, 7, 64, 4096] {
            let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
                .unwrap()
                .chunk_records(chunk);
            for r in &t.records {
                w.write(*r).unwrap();
            }
            let bytes = w.finish().unwrap();
            assert_eq!(
                Trace::from_bytes(&bytes).unwrap(),
                t,
                "chunk size {chunk} changed the decoded trace"
            );
        }
    }

    /// A `Read` impl that returns one byte at a time — the pathological
    /// minimum every streaming decoder must tolerate.
    struct OneByte<'a>(&'a [u8]);

    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn one_byte_at_a_time_reader_decodes_both_versions() {
        let t = strided_trace(50);
        let v2 = TraceReader::new(OneByte(&t.to_bytes()))
            .unwrap()
            .into_trace()
            .unwrap();
        assert_eq!(v2, t);
        let mut v1_source = t.clone();
        for r in &mut v1_source.records {
            r.completion = None; // v1 cannot carry completions
        }
        let v1 = TraceReader::new(OneByte(&v1_source.to_bytes_v1()))
            .unwrap()
            .into_trace()
            .unwrap();
        assert_eq!(v1, v1_source);
    }

    #[test]
    fn reader_exposes_header_before_records() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(
            r.header(),
            &TraceHeader {
                version: FORMAT_VERSION,
                nodes: 3,
                seed: 0xBA5E,
                workload: "sample".to_string()
            }
        );
    }

    #[test]
    fn reader_surfaces_the_index_after_exhaustion() {
        let t = strided_trace(100);
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .chunk_records(32);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        assert!(reader.index().is_none(), "index only known at the end");
        let decoded: Result<Vec<_>, _> = (&mut reader).collect();
        assert_eq!(decoded.unwrap().len(), 100);
        let index = reader.index().expect("index written by default");
        assert_eq!(index.entries.len(), 4); // 32+32+32+4
        assert_eq!(index.total_records(), 100);
        assert_eq!(index.entries[0].offset, 0);
        assert_eq!(index.locate(95).unwrap().first_record, 64);
        assert_eq!(index.locate(96).unwrap().first_record, 96);
        assert!(index.locate(100).is_none());
    }

    #[test]
    fn index_can_be_disabled() {
        let t = sample_trace();
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .index(false);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let decoded: Result<Vec<_>, _> = (&mut reader).collect();
        assert_eq!(decoded.unwrap().len(), 2);
        assert!(reader.index().is_none());
    }

    #[test]
    fn seekable_trace_reads_chunks_in_isolation() {
        let t = strided_trace(100);
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .chunk_records(32);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut seekable = SeekableTrace::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(seekable.header().workload, "strided");
        assert_eq!(seekable.index().entries.len(), 4);
        // Read the *last* chunk without touching the others.
        let last = seekable.read_chunk(3).unwrap();
        assert_eq!(last.len(), 4);
        assert_eq!(&last[..], &t.records[96..]);
        // And a middle one, by record number.
        let (chunk, within) = seekable.read_around(40).unwrap();
        assert_eq!(chunk[within], t.records[40]);
        assert!(matches!(
            seekable.read_chunk(4),
            Err(TraceError::BadIndex(_))
        ));
    }

    #[test]
    fn seekable_refuses_an_index_less_trace() {
        let t = sample_trace();
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .index(false);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert!(matches!(
            SeekableTrace::open(Cursor::new(&bytes)),
            Err(TraceError::BadIndex(_) | TraceError::Truncated)
        ));
    }

    #[test]
    fn delta_encoding_shrinks_strided_traces() {
        let mut t = strided_trace(2000);
        for r in &mut t.records {
            r.completion = None; // compare like for like: v1 has no completions
        }
        let v1 = t.to_bytes_v1().len();
        let v2 = t.to_bytes().len();
        assert!(
            v2 < v1,
            "v2 ({v2} B) should be smaller than v1 ({v1} B) on strided traces"
        );
    }

    #[test]
    fn corrupt_chunk_identifies_its_index() {
        let t = strided_trace(100);
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .chunk_records(32);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        // Find chunk 2's checksum via a seekable open, then flip one of
        // its payload bytes.
        let offset = {
            let seekable = SeekableTrace::open(Cursor::new(&bytes)).unwrap();
            seekable.index().entries[2].offset
        };
        let data_start = TraceReader::new(&bytes[..])
            .unwrap()
            .data_start()
            .expect("v2 trace") as usize;
        // Flip a byte well inside chunk 2's payload (skip its two head
        // varints).
        bytes[data_start + offset as usize + 6] ^= 0x01;
        let err = Trace::from_bytes(&bytes).unwrap_err();
        match err {
            TraceError::ChunkChecksumMismatch { chunk } => assert_eq!(chunk, 2),
            TraceError::BadChunk { chunk, .. } => assert_eq!(chunk, 2),
            // A flip that lands in a varint continuation bit can also
            // surface as a structural or range error — typed either way.
            TraceError::Truncated
            | TraceError::BadVarint
            | TraceError::BadOpKind(_)
            | TraceError::FieldOverflow
            | TraceError::NodeOutOfRange { .. }
            | TraceError::WordOutOfRange { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Writes `t` with 32-record chunks and returns the encoded bytes
    /// plus the absolute file offset of chunk `i`.
    fn chunked_bytes_with_offset(t: &Trace, i: usize) -> (Vec<u8>, usize) {
        let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
            .unwrap()
            .chunk_records(32);
        for r in &t.records {
            w.write(*r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let offset = SeekableTrace::open(Cursor::new(&bytes))
            .unwrap()
            .index()
            .entries[i]
            .offset;
        let data_start = TraceReader::new(&bytes[..])
            .unwrap()
            .data_start()
            .expect("v2 trace") as usize;
        (bytes, data_start + offset as usize)
    }

    #[test]
    fn recovering_reader_skips_a_rotted_chunk_and_resumes() {
        let t = strided_trace(100); // chunks of 32: 32+32+32+4
        let (mut bytes, chunk2) = chunked_bytes_with_offset(&t, 2);
        bytes[chunk2 + 6] ^= 0x01; // inside chunk 2's payload
        let mut reader = TraceReader::new(&bytes[..]).unwrap().recovering();
        let decoded: Vec<TraceRecord> = (&mut reader).collect::<Result<_, _>>().unwrap();
        assert_eq!(reader.skipped_chunks(), 1);
        assert_eq!(decoded.len(), 68, "100 records minus chunk 2's 32");
        // Chunks 0, 1 and 3 came through byte-exact.
        assert_eq!(&decoded[..64], &t.records[..64]);
        assert_eq!(&decoded[64..], &t.records[96..]);
        // The trailing index cross-check survives skipping: it describes
        // the file's declared framing, which the flip did not change.
        assert_eq!(reader.index().expect("index survives").entries.len(), 4);
        // The same bytes poison a strict reader.
        let strict: Result<Vec<_>, _> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert!(strict.is_err());
    }

    #[test]
    fn recovering_reader_is_exact_on_healthy_traces() {
        let t = strided_trace(100);
        let bytes = t.to_bytes();
        let mut reader = TraceReader::new(&bytes[..]).unwrap().recovering();
        let decoded: Vec<TraceRecord> = (&mut reader).collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, t.records);
        assert_eq!(reader.skipped_chunks(), 0);
    }

    #[test]
    fn recovering_reader_still_hard_fails_on_broken_framing() {
        // Zeroing a chunk's count varint turns it into a terminator: the
        // framing itself is gone, and recovery has no boundary to resume
        // at — the trailing index then disagrees with the chunks read.
        let t = strided_trace(100);
        let (mut bytes, chunk2) = chunked_bytes_with_offset(&t, 2);
        bytes[chunk2] = 0x00;
        let outcome: Result<Vec<_>, _> =
            TraceReader::new(&bytes[..]).unwrap().recovering().collect();
        assert!(outcome.is_err(), "framing corruption must stay loud");
    }

    #[test]
    fn implausible_chunk_count_is_an_error_not_an_allocation() {
        // A crafted chunk header claiming 2^40 records (with a payload
        // length that passes the plausibility bounds) must fail as a
        // typed decode error; pre-capped allocation means it cannot
        // abort the process with a failed multi-terabyte allocation.
        let t = sample_trace();
        let bytes = t.to_bytes();
        let data_start = TraceReader::new(&bytes[..])
            .unwrap()
            .data_start()
            .expect("v2 trace") as usize;
        let mut crafted = bytes[..data_start].to_vec();
        let count = 1u64 << 40;
        crate::wire::put_varint(&mut crafted, count);
        crate::wire::put_varint(&mut crafted, count * 7); // inside [6c, 64c]
        let err = Trace::from_bytes(&crafted).unwrap_err();
        assert!(
            matches!(err, TraceError::Truncated | TraceError::BadChunk { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn empty_trace_decodes_to_the_empty_error() {
        let w = TraceWriter::new(Vec::new(), 2, 0, "empty").unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::Empty));
    }

    #[test]
    fn zero_nodes_is_rejected_at_writer_construction() {
        assert!(matches!(
            TraceWriter::new(Vec::new(), 0, 0, "x"),
            Err(TraceError::ZeroNodes)
        ));
    }

    #[test]
    fn header_corruption_is_a_checksum_mismatch() {
        let mut bytes = sample_trace().to_bytes();
        bytes[12] ^= 0x01; // inside the seed field
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::ChecksumMismatch));
    }

    #[test]
    fn trailing_bytes_after_index_are_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes.push(0);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::TrailingBytes));
    }

    #[test]
    fn writer_rejects_invalid_records_before_writing() {
        let mut w = TraceWriter::new(Vec::new(), 2, 0, "x").unwrap();
        let mut r = sample_trace().records[0];
        r.node = NodeId(7);
        assert!(matches!(
            w.write(r),
            Err(TraceError::NodeOutOfRange { node: 7, .. })
        ));
    }
}
