//! Shared low-level wire helpers for both trace encodings: FNV-1a
//! checksums (one-shot and incremental), LEB128 varints over byte slices
//! and `io` streams, and the zigzag transform used by the v2 per-node
//! block-address deltas.

use std::io::{self, Read, Write};

use crate::TraceError;

/// Incremental FNV-1a (the same function v1 applied in one shot).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Appends a LEB128 varint to a byte buffer.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encodes a wrapping i64 delta so small magnitudes (either sign)
/// varint-encode in one or two bytes.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Maps an `io` failure to the trace error type, folding an unexpected EOF
/// into [`TraceError::Truncated`] so stream decode errors read identically
/// to slice decode errors.
pub(crate) fn io_err(e: io::Error) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::Truncated
    } else {
        TraceError::Io(e.to_string())
    }
}

/// A byte source for the streaming reader: wraps any [`Read`], hashing
/// every consumed byte into an optional running FNV (checksummed regions
/// switch it on and off) and counting total consumption (index offsets).
pub(crate) struct ByteReader<R: Read> {
    inner: R,
    hash: Option<Fnv1a>,
    consumed: u64,
}

impl<R: Read> ByteReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        ByteReader {
            inner,
            hash: None,
            consumed: 0,
        }
    }

    /// Starts hashing every subsequently consumed byte.
    pub(crate) fn start_hash(&mut self) {
        self.hash = Some(Fnv1a::new());
    }

    /// Stops hashing and returns the accumulated checksum.
    pub(crate) fn take_hash(&mut self) -> u64 {
        self.hash.take().expect("hashing was started").finish()
    }

    /// Feeds already-consumed bytes into the running hash (used when a
    /// region's first byte had to be read before hashing could start,
    /// e.g. probing for the optional trailing index).
    pub(crate) fn hash_extra(&mut self, bytes: &[u8]) {
        if let Some(h) = &mut self.hash {
            h.update(bytes);
        }
    }

    /// Total bytes consumed so far.
    pub(crate) fn consumed(&self) -> u64 {
        self.consumed
    }

    pub(crate) fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        self.inner.read_exact(buf).map_err(io_err)?;
        if let Some(h) = &mut self.hash {
            h.update(buf);
        }
        self.consumed += buf.len() as u64;
        Ok(())
    }

    pub(crate) fn byte(&mut self) -> Result<u8, TraceError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads one byte, or `None` at a clean EOF (used to detect the
    /// optional trailing index after the terminator chunk).
    pub(crate) fn byte_or_eof(&mut self) -> Result<Option<u8>, TraceError> {
        let mut b = [0u8; 1];
        loop {
            match self.inner.read(&mut b) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    if let Some(h) = &mut self.hash {
                        h.update(&b);
                    }
                    self.consumed += 1;
                    return Ok(Some(b[0]));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    pub(crate) fn u16_le(&mut self) -> Result<u16, TraceError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    pub(crate) fn u32_le(&mut self) -> Result<u32, TraceError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64_le(&mut self) -> Result<u64, TraceError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a canonical LEB128 u64 (at most 10 bytes).
    pub(crate) fn varint(&mut self) -> Result<u64, TraceError> {
        let first = self.byte()?;
        self.varint_cont(first)
    }

    /// Continues a varint whose first byte was already consumed (e.g. by
    /// [`byte_or_eof`](Self::byte_or_eof) while probing for the optional
    /// trailing index). The one canonical decode loop — [`varint`]
    /// (Self::varint) and [`slice_varint`] delegate here.
    pub(crate) fn varint_cont(&mut self, first: u8) -> Result<u64, TraceError> {
        decode_varint(first, || self.byte())
    }
}

/// The LEB128 decode loop shared by every byte source: `first` has been
/// consumed already, `next` supplies continuation bytes. Rejects
/// non-canonical u64s (more than 10 bytes, or a 10th byte above 1).
fn decode_varint(
    first: u8,
    mut next: impl FnMut() -> Result<u8, TraceError>,
) -> Result<u64, TraceError> {
    let mut value = (first & 0x7f) as u64;
    let mut byte = first;
    let mut shift = 0u32;
    while byte & 0x80 != 0 {
        shift += 7;
        if shift > 63 {
            return Err(TraceError::BadVarint);
        }
        byte = next()?;
        if shift == 63 && byte > 1 {
            return Err(TraceError::BadVarint);
        }
        value |= ((byte & 0x7f) as u64) << shift;
    }
    Ok(value)
}

/// A byte sink for the streaming writer: wraps any [`Write`] and counts
/// bytes written (chunk offsets for the trailing index).
pub(crate) struct ByteWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> ByteWriter<W> {
    pub(crate) fn new(inner: W) -> Self {
        ByteWriter { inner, written: 0 }
    }

    pub(crate) fn write_all(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.inner
            .write_all(bytes)
            .map_err(|e| TraceError::Io(e.to_string()))?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    pub(crate) fn written(&self) -> u64 {
        self.written
    }

    pub(crate) fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(2) < 8);
    }

    #[test]
    fn varint_roundtrips_over_streams() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf[..]);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
    }

    #[test]
    fn incremental_fnv_matches_one_shot() {
        let bytes = b"hello trace world";
        let mut h = Fnv1a::new();
        h.update(&bytes[..5]);
        h.update(&bytes[5..]);
        assert_eq!(h.finish(), fnv1a(bytes));
    }
}
