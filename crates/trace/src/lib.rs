//! Versioned on-disk memory-reference traces.
//!
//! A [`Trace`] is the protocol-independent record of every processor
//! operation a workload issued during one run: per record the issuing
//! node, the think time before the issue, the instructions retired while
//! thinking, and the [`ProcOp`] itself. Because the coherence protocol
//! only ever observes this op stream, a captured trace can be replayed
//! through *any* protocol, bandwidth, or thread count and the replay is a
//! pure function of the trace plus the system configuration — which is
//! what lets CI gate on byte-exact golden reports.
//!
//! Two interchangeable encodings:
//!
//! * a **compact binary form** ([`Trace::to_bytes`] / [`Trace::from_bytes`],
//!   module [`binary`]) — magic + version header, LEB128 varint fields and
//!   an FNV-1a trailer checksum; this is the on-disk format of the
//!   committed golden mini-traces;
//! * a **text debug form** ([`Trace::to_text`] / [`Trace::from_text`],
//!   module [`text`]) — one record per line, diffable and hand-editable.
//!
//! Every decode path runs the [`Trace::validate`] checks, so a corrupt or
//! hand-mangled trace fails loudly instead of silently replaying garbage.

#![deny(missing_docs)]

pub mod binary;
pub mod text;

use std::fmt;
use std::path::Path;

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::ProcOp;
use bash_kernel::Duration;
use bash_net::NodeId;

/// The only binary/text format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// One captured processor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The node that issued the operation.
    pub node: NodeId,
    /// Think/execute time between the previous completion and this issue.
    pub think: Duration,
    /// Instructions retired during `think`.
    pub instructions: u64,
    /// The memory operation.
    pub op: ProcOp,
}

/// A complete captured reference stream plus its provenance header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// System size the trace was captured on. Replays must use the same
    /// node count (records address nodes `0..nodes`).
    pub nodes: u16,
    /// RNG seed of the capturing run (provenance only; replay needs no
    /// randomness).
    pub seed: u64,
    /// Display name of the captured workload. Replayers report this name
    /// so a replayed report is comparable to the captured one.
    pub workload: String,
    /// The op stream, in capture (issue-request) order.
    pub records: Vec<TraceRecord>,
}

/// Why a trace failed to decode or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The buffer ended mid-field.
    Truncated,
    /// The trailer checksum does not match the payload.
    ChecksumMismatch,
    /// Bytes remain after the checksum trailer.
    TrailingBytes,
    /// The workload name is not valid UTF-8.
    BadName,
    /// An unknown op-kind tag was read.
    BadOpKind(u8),
    /// A varint ran past 10 bytes (not a canonical u64).
    BadVarint,
    /// A numeric field does not fit its domain (e.g. a node id over u16).
    FieldOverflow,
    /// The header declares zero nodes.
    ZeroNodes,
    /// The trace has no records.
    Empty,
    /// A record addresses a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending record index.
        record: usize,
        /// The out-of-range node id.
        node: u16,
        /// The header's node count.
        nodes: u16,
    },
    /// A record addresses a word outside the cache block.
    WordOutOfRange {
        /// The offending record index.
        record: usize,
        /// The out-of-range word index.
        word: usize,
    },
    /// A text line could not be parsed.
    BadTextLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// An I/O error while reading or writing a trace file.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a bash-trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader is v{FORMAT_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace truncated mid-field"),
            TraceError::ChecksumMismatch => write!(f, "trace checksum mismatch (corrupt payload)"),
            TraceError::TrailingBytes => write!(f, "trailing bytes after trace checksum"),
            TraceError::BadName => write!(f, "workload name is not valid UTF-8"),
            TraceError::BadOpKind(k) => write!(f, "unknown op kind tag {k}"),
            TraceError::BadVarint => write!(f, "varint longer than 10 bytes"),
            TraceError::FieldOverflow => write!(f, "numeric field out of range"),
            TraceError::ZeroNodes => write!(f, "trace header declares zero nodes"),
            TraceError::Empty => write!(f, "trace has no records"),
            TraceError::NodeOutOfRange {
                record,
                node,
                nodes,
            } => write!(
                f,
                "record {record} addresses node {node} but the trace has {nodes} nodes"
            ),
            TraceError::WordOutOfRange { record, word } => write!(
                f,
                "record {record} addresses word {word} (blocks have {WORDS_PER_BLOCK} words)"
            ),
            TraceError::BadTextLine { line, what } => {
                write!(f, "text trace line {line}: {what}")
            }
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Checks the structural invariants every decode path enforces: a
    /// positive node count, at least one record, every record addressing a
    /// node inside the system and a word inside the block.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.nodes == 0 {
            return Err(TraceError::ZeroNodes);
        }
        if self.records.is_empty() {
            return Err(TraceError::Empty);
        }
        for (i, r) in self.records.iter().enumerate() {
            if r.node.0 >= self.nodes {
                return Err(TraceError::NodeOutOfRange {
                    record: i,
                    node: r.node.0,
                    nodes: self.nodes,
                });
            }
            let word = match r.op {
                ProcOp::Load { word, .. } | ProcOp::Store { word, .. } => word,
            };
            if word >= WORDS_PER_BLOCK {
                return Err(TraceError::WordOutOfRange { record: i, word });
            }
        }
        Ok(())
    }

    /// Number of records addressed to `node`.
    pub fn ops_for(&self, node: NodeId) -> usize {
        self.records.iter().filter(|r| r.node == node).count()
    }

    /// Writes the compact binary form to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads (and validates) the compact binary form from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_bytes(&bytes)
    }
}

/// An incremental trace builder — what the simulation core's capture hook
/// appends to while a run executes.
///
/// ```
/// use bash_trace::{TraceWriter, TraceRecord};
/// use bash_coherence::{BlockAddr, ProcOp};
/// use bash_kernel::Duration;
/// use bash_net::NodeId;
///
/// let mut w = TraceWriter::new(2, 42, "demo");
/// w.record(TraceRecord {
///     node: NodeId(0),
///     think: Duration::from_ns(5),
///     instructions: 20,
///     op: ProcOp::Load { block: BlockAddr(7), word: 3 },
/// });
/// let trace = w.finish();
/// assert_eq!(trace.records.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    trace: Trace,
}

impl TraceWriter {
    /// Starts an empty trace for a `nodes`-node run.
    pub fn new(nodes: u16, seed: u64, workload: impl Into<String>) -> Self {
        TraceWriter {
            trace: Trace {
                nodes,
                seed,
                workload: workload.into(),
                records: Vec::new(),
            },
        }
    }

    /// Appends one captured op.
    pub fn record(&mut self, record: TraceRecord) {
        self.trace.records.push(record);
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.trace.records.len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.trace.records.is_empty()
    }

    /// Updates the workload display name (the capture hook only learns the
    /// final name when the run finishes).
    pub fn set_workload(&mut self, workload: impl Into<String>) {
        self.trace.workload = workload.into();
    }

    /// Finalizes the capture into an owned [`Trace`].
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::BlockAddr;

    pub(crate) fn sample_trace() -> Trace {
        Trace {
            nodes: 3,
            seed: 0xBA5E,
            workload: "sample".to_string(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(5),
                    instructions: 20,
                    op: ProcOp::Load {
                        block: BlockAddr(7),
                        word: 3,
                    },
                },
                TraceRecord {
                    node: NodeId(2),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr((1 << 40) + 9),
                        word: 0,
                        value: u64::MAX,
                    },
                },
            ],
        }
    }

    #[test]
    fn validate_accepts_sane_trace() {
        assert_eq!(sample_trace().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_node() {
        let mut t = sample_trace();
        t.records[1].node = NodeId(3);
        assert_eq!(
            t.validate(),
            Err(TraceError::NodeOutOfRange {
                record: 1,
                node: 3,
                nodes: 3
            })
        );
    }

    #[test]
    fn validate_rejects_bad_word() {
        let mut t = sample_trace();
        t.records[0].op = ProcOp::Load {
            block: BlockAddr(1),
            word: WORDS_PER_BLOCK,
        };
        assert_eq!(
            t.validate(),
            Err(TraceError::WordOutOfRange {
                record: 0,
                word: WORDS_PER_BLOCK
            })
        );
    }

    #[test]
    fn validate_rejects_empty() {
        let mut t = sample_trace();
        t.records.clear();
        assert_eq!(t.validate(), Err(TraceError::Empty));
        t.nodes = 0;
        assert_eq!(t.validate(), Err(TraceError::ZeroNodes));
    }

    #[test]
    fn writer_accumulates() {
        let mut w = TraceWriter::new(2, 1, "w");
        assert!(w.is_empty());
        w.record(sample_trace().records[0]);
        w.set_workload("renamed");
        assert_eq!(w.len(), 1);
        let t = w.finish();
        assert_eq!(t.workload, "renamed");
        assert_eq!(t.nodes, 2);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("bash_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        t.write_to(&path).unwrap();
        assert_eq!(Trace::read_from(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        match Trace::read_from("/nonexistent/bash.trace") {
            Err(TraceError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
