//! Versioned on-disk memory-reference traces.
//!
//! A [`Trace`] is the protocol-independent record of every processor
//! operation a workload issued during one run: per record the issuing
//! node, the think time before the issue, the instructions retired while
//! thinking, the [`ProcOp`] itself, and (optionally) the issue→complete
//! latency the capturing run observed. Because the coherence protocol
//! only ever observes this op stream, a captured trace can be replayed
//! through *any* protocol, bandwidth, or thread count and the replay is a
//! pure function of the trace plus the system configuration — which is
//! what lets CI gate on byte-exact golden reports.
//!
//! Encodings:
//!
//! * the **v2 chunked binary form** (module [`stream`]) — the current
//!   on-disk format: a checksummed header followed by fixed-size record
//!   chunks, each carrying its own record count, FNV-1a checksum and
//!   per-node delta-encoded block addresses, terminated by an empty chunk
//!   and an optional seekable chunk index. Written and read *streaming*
//!   through [`TraceWriter`]/[`TraceReader`], so multi-GB traces never
//!   need to fit in memory; [`Trace::to_bytes`]/[`Trace::from_bytes`] are
//!   the in-memory convenience wrappers.
//! * the **v1 binary form** (module [`binary`]) — the original
//!   whole-buffer format. Decode support is permanent ([`Trace::from_bytes`]
//!   and [`TraceReader`] dispatch on the version header); encode survives
//!   as [`Trace::to_bytes_v1`] for compatibility fixtures and size
//!   comparisons.
//! * a **text debug form** ([`Trace::to_text`] / [`Trace::from_text`],
//!   module [`text`]) — one record per line, diffable and hand-editable.
//!
//! Every decode path runs the [`Trace::validate`] checks (streaming
//! decoders validate records as they go), so a corrupt or hand-mangled
//! trace fails loudly instead of silently replaying garbage.
//!
//! The wire formats are specified field-by-field in `docs/TRACE_FORMAT.md`.

#![deny(missing_docs)]

pub mod binary;
pub mod stream;
pub mod text;
mod wire;

use std::fmt;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::ProcOp;
use bash_kernel::Duration;
use bash_net::NodeId;

pub use stream::{ChunkIndex, SeekableTrace, TraceHeader, TraceReader, TraceWriter};

/// The binary/text format version this crate writes (decoders also accept
/// [`FORMAT_V1`]).
pub const FORMAT_VERSION: u16 = 2;

/// The legacy format version: decode is kept working forever, encode only
/// through [`Trace::to_bytes_v1`].
pub const FORMAT_V1: u16 = 1;

/// One captured processor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The node that issued the operation.
    pub node: NodeId,
    /// Think/execute time between the previous completion and this issue.
    pub think: Duration,
    /// Instructions retired during `think`.
    pub instructions: u64,
    /// The memory operation.
    pub op: ProcOp,
    /// Issue→complete latency the capturing run observed, when completion
    /// capture was enabled (v2 traces only; v1 decode always yields
    /// `None`). Replay ignores it — the field exists so latency-sensitive
    /// passes can diff distributions across protocols.
    pub completion: Option<Duration>,
}

/// A complete captured reference stream plus its provenance header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// System size the trace was captured on. Replays must use the same
    /// node count (records address nodes `0..nodes`).
    pub nodes: u16,
    /// RNG seed of the capturing run (provenance only; replay needs no
    /// randomness).
    pub seed: u64,
    /// Display name of the captured workload. Replayers report this name
    /// so a replayed report is comparable to the captured one.
    pub workload: String,
    /// The op stream, in capture (issue-request) order.
    pub records: Vec<TraceRecord>,
}

/// Why a trace failed to decode or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The buffer ended mid-field.
    Truncated,
    /// A whole-payload (v1) or header/index (v2) checksum does not match.
    ChecksumMismatch,
    /// A v2 chunk's checksum does not match its payload.
    ChunkChecksumMismatch {
        /// 0-based index of the corrupt chunk.
        chunk: usize,
    },
    /// A v2 chunk is structurally broken (its payload decoded to the
    /// wrong record count or length).
    BadChunk {
        /// 0-based index of the broken chunk.
        chunk: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// The trailing chunk index is malformed or inconsistent with the
    /// chunks actually read.
    BadIndex(&'static str),
    /// Bytes remain after the end of the trace.
    TrailingBytes,
    /// The workload name is not valid UTF-8.
    BadName,
    /// An unknown op-kind tag or record flag was read.
    BadOpKind(u8),
    /// A varint ran past 10 bytes (not a canonical u64).
    BadVarint,
    /// A numeric field does not fit its domain (e.g. a node id over u16).
    FieldOverflow,
    /// The header declares zero nodes.
    ZeroNodes,
    /// The trace has no records.
    Empty,
    /// A record addresses a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending record index.
        record: usize,
        /// The out-of-range node id.
        node: u16,
        /// The header's node count.
        nodes: u16,
    },
    /// A record addresses a word outside the cache block.
    WordOutOfRange {
        /// The offending record index.
        record: usize,
        /// The out-of-range word index.
        word: usize,
    },
    /// A text line could not be parsed.
    BadTextLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// An I/O error while reading or writing a trace file.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a bash-trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader is v{FORMAT_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace truncated mid-field"),
            TraceError::ChecksumMismatch => write!(f, "trace checksum mismatch (corrupt payload)"),
            TraceError::ChunkChecksumMismatch { chunk } => {
                write!(f, "chunk {chunk}: checksum mismatch (corrupt chunk)")
            }
            TraceError::BadChunk { chunk, what } => write!(f, "chunk {chunk}: {what}"),
            TraceError::BadIndex(what) => write!(f, "trace chunk index: {what}"),
            TraceError::TrailingBytes => write!(f, "trailing bytes after end of trace"),
            TraceError::BadName => write!(f, "workload name is not valid UTF-8"),
            TraceError::BadOpKind(k) => write!(f, "unknown op kind tag or record flag {k:#04x}"),
            TraceError::BadVarint => write!(f, "varint longer than 10 bytes"),
            TraceError::FieldOverflow => write!(f, "numeric field out of range"),
            TraceError::ZeroNodes => write!(f, "trace header declares zero nodes"),
            TraceError::Empty => write!(f, "trace has no records"),
            TraceError::NodeOutOfRange {
                record,
                node,
                nodes,
            } => write!(
                f,
                "record {record} addresses node {node} but the trace has {nodes} nodes"
            ),
            TraceError::WordOutOfRange { record, word } => write!(
                f,
                "record {record} addresses word {word} (blocks have {WORDS_PER_BLOCK} words)"
            ),
            TraceError::BadTextLine { line, what } => {
                write!(f, "text trace line {line}: {what}")
            }
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Checks one record against the header's node count and the block
/// geometry — the per-record half of [`Trace::validate`], shared with the
/// streaming decoders (which validate records as they arrive instead of
/// after buffering a whole trace).
pub(crate) fn validate_record(r: &TraceRecord, index: usize, nodes: u16) -> Result<(), TraceError> {
    if r.node.0 >= nodes {
        return Err(TraceError::NodeOutOfRange {
            record: index,
            node: r.node.0,
            nodes,
        });
    }
    let word = match r.op {
        ProcOp::Load { word, .. } | ProcOp::Store { word, .. } => word,
    };
    if word >= WORDS_PER_BLOCK {
        return Err(TraceError::WordOutOfRange {
            record: index,
            word,
        });
    }
    Ok(())
}

impl Trace {
    /// Checks the structural invariants every decode path enforces: a
    /// positive node count, at least one record, every record addressing a
    /// node inside the system and a word inside the block.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.nodes == 0 {
            return Err(TraceError::ZeroNodes);
        }
        if self.records.is_empty() {
            return Err(TraceError::Empty);
        }
        for (i, r) in self.records.iter().enumerate() {
            validate_record(r, i, self.nodes)?;
        }
        Ok(())
    }

    /// Number of records addressed to `node`.
    pub fn ops_for(&self, node: NodeId) -> usize {
        self.records.iter().filter(|r| r.node == node).count()
    }

    /// Number of records carrying an issue→complete latency.
    pub fn completions(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.completion.is_some())
            .count()
    }

    /// Writes the v2 chunked binary form to `path`, streaming through a
    /// buffered [`TraceWriter`] (the file is written incrementally, never
    /// assembled in memory).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let file = std::fs::File::create(path).map_err(|e| TraceError::Io(e.to_string()))?;
        let mut writer = TraceWriter::new(
            BufWriter::new(file),
            self.nodes,
            self.seed,
            self.workload.clone(),
        )?;
        for r in &self.records {
            writer.write(*r)?;
        }
        use std::io::Write as _;
        writer
            .finish()?
            .flush()
            .map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads (and validates) the binary form — either version — from
    /// `path`, streaming through a buffered [`TraceReader`].
    pub fn read_from(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
        TraceReader::new(BufReader::new(file))?.into_trace()
    }
}

/// The incremental in-memory capture buffer — what the simulation core's
/// capture hook appends to while a run executes. (The *streaming* encoder
/// is [`TraceWriter`]; this type exists because the capture hook must
/// patch completion latencies into already-captured records, which a
/// write-once stream cannot do.)
///
/// ```
/// use bash_trace::{TraceCapture, TraceRecord};
/// use bash_coherence::{BlockAddr, ProcOp};
/// use bash_kernel::Duration;
/// use bash_net::NodeId;
///
/// let mut c = TraceCapture::new(2, 42, "demo");
/// c.record(TraceRecord {
///     node: NodeId(0),
///     think: Duration::from_ns(5),
///     instructions: 20,
///     op: ProcOp::Load { block: BlockAddr(7), word: 3 },
///     completion: None,
/// });
/// c.record_completion(NodeId(0), Duration::from_ns(125));
/// let trace = c.finish();
/// assert_eq!(trace.records.len(), 1);
/// assert_eq!(trace.records[0].completion, Some(Duration::from_ns(125)));
/// ```
#[derive(Debug, Clone)]
pub struct TraceCapture {
    trace: Trace,
    /// Per-node index of the most recently captured record — the op whose
    /// completion has not been observed yet (processors are blocking, so
    /// at most one per node is in flight).
    last: Vec<Option<usize>>,
}

impl TraceCapture {
    /// Starts an empty capture for a `nodes`-node run.
    pub fn new(nodes: u16, seed: u64, workload: impl Into<String>) -> Self {
        TraceCapture {
            trace: Trace {
                nodes,
                seed,
                workload: workload.into(),
                records: Vec::new(),
            },
            last: vec![None; nodes as usize],
        }
    }

    /// Appends one captured op.
    ///
    /// # Panics
    ///
    /// Panics if the record addresses a node outside the capture's
    /// `0..nodes` range — the capture hook receives records the driver
    /// built from its own node ids, so an out-of-range node is a
    /// programming error, not data to tolerate. (The lenient encoders
    /// accept such traces and defer to decode-time validation; see
    /// `Trace::to_bytes_v1`.)
    pub fn record(&mut self, record: TraceRecord) {
        assert!(
            record.node.0 < self.trace.nodes,
            "captured record addresses node {} but the capture has {} nodes",
            record.node.0,
            self.trace.nodes
        );
        self.last[record.node.index()] = Some(self.trace.records.len());
        self.trace.records.push(record);
    }

    /// Stamps the issue→complete latency onto `node`'s most recently
    /// captured record (the op currently in flight at that processor).
    /// A completion with no captured record is ignored — it belongs to an
    /// op issued before capture was enabled.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the capture's `0..nodes` range (see
    /// [`record`](Self::record)).
    pub fn record_completion(&mut self, node: NodeId, latency: Duration) {
        assert!(
            node.0 < self.trace.nodes,
            "completion for node {} but the capture has {} nodes",
            node.0,
            self.trace.nodes
        );
        if let Some(idx) = self.last[node.index()] {
            self.trace.records[idx].completion = Some(latency);
        }
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.trace.records.len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.trace.records.is_empty()
    }

    /// Updates the workload display name (the capture hook only learns the
    /// final name when the run finishes).
    pub fn set_workload(&mut self, workload: impl Into<String>) {
        self.trace.workload = workload.into();
    }

    /// Finalizes the capture into an owned [`Trace`].
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::BlockAddr;

    pub(crate) fn sample_trace() -> Trace {
        Trace {
            nodes: 3,
            seed: 0xBA5E,
            workload: "sample".to_string(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(5),
                    instructions: 20,
                    op: ProcOp::Load {
                        block: BlockAddr(7),
                        word: 3,
                    },
                    completion: Some(Duration::from_ns(180)),
                },
                TraceRecord {
                    node: NodeId(2),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr((1 << 40) + 9),
                        word: 0,
                        value: u64::MAX,
                    },
                    completion: None,
                },
            ],
        }
    }

    #[test]
    fn validate_accepts_sane_trace() {
        assert_eq!(sample_trace().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_node() {
        let mut t = sample_trace();
        t.records[1].node = NodeId(3);
        assert_eq!(
            t.validate(),
            Err(TraceError::NodeOutOfRange {
                record: 1,
                node: 3,
                nodes: 3
            })
        );
    }

    #[test]
    fn validate_rejects_bad_word() {
        let mut t = sample_trace();
        t.records[0].op = ProcOp::Load {
            block: BlockAddr(1),
            word: WORDS_PER_BLOCK,
        };
        assert_eq!(
            t.validate(),
            Err(TraceError::WordOutOfRange {
                record: 0,
                word: WORDS_PER_BLOCK
            })
        );
    }

    #[test]
    fn validate_rejects_empty() {
        let mut t = sample_trace();
        t.records.clear();
        assert_eq!(t.validate(), Err(TraceError::Empty));
        t.nodes = 0;
        assert_eq!(t.validate(), Err(TraceError::ZeroNodes));
    }

    #[test]
    fn capture_accumulates_and_patches_completions() {
        let mut c = TraceCapture::new(2, 1, "w");
        assert!(c.is_empty());
        let mut rec = sample_trace().records[0];
        rec.node = NodeId(0);
        rec.completion = None;
        c.record(rec);
        c.record_completion(NodeId(0), Duration::from_ns(99));
        // A completion for a node with no captured record is ignored.
        c.record_completion(NodeId(1), Duration::from_ns(5));
        c.set_workload("renamed");
        assert_eq!(c.len(), 1);
        let t = c.finish();
        assert_eq!(t.workload, "renamed");
        assert_eq!(t.nodes, 2);
        assert_eq!(t.records[0].completion, Some(Duration::from_ns(99)));
    }

    #[test]
    fn completion_patch_targets_the_latest_record_per_node() {
        let base = sample_trace().records[0];
        let mut c = TraceCapture::new(1, 0, "w");
        let mut first = base;
        first.completion = None;
        c.record(first);
        c.record_completion(NodeId(0), Duration::from_ns(10));
        let mut second = base;
        second.completion = None;
        c.record(second);
        c.record_completion(NodeId(0), Duration::from_ns(20));
        let t = c.finish();
        assert_eq!(t.records[0].completion, Some(Duration::from_ns(10)));
        assert_eq!(t.records[1].completion, Some(Duration::from_ns(20)));
    }

    #[test]
    fn completions_counts_latency_bearing_records() {
        assert_eq!(sample_trace().completions(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("bash_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        t.write_to(&path).unwrap();
        assert_eq!(Trace::read_from(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        match Trace::read_from("/nonexistent/bash.trace") {
            Err(TraceError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
