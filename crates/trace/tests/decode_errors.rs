//! Systematic decode-error coverage for every trace encoding: each
//! corruption class must surface as a **typed** [`TraceError`] — never a
//! panic, never a silently different trace.
//!
//! The v2 sweeps exercise the chunked format exhaustively: every
//! truncation prefix, every single-byte flip (in every chunk, the header,
//! the terminator and the trailing index), and targeted chunk-checksum
//! corruption, which must identify the corrupt chunk by index.

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Duration;
use bash_net::NodeId;
use bash_trace::{binary::MAGIC, Trace, TraceError, TraceRecord, TraceWriter};

fn sample() -> Trace {
    Trace {
        nodes: 3,
        seed: 0xBEEF,
        workload: "decode errors".to_string(),
        records: vec![
            TraceRecord {
                node: NodeId(0),
                think: Duration::from_ns(7),
                instructions: 12,
                op: ProcOp::Load {
                    block: BlockAddr(5),
                    word: 3,
                },
                completion: Some(Duration::from_ns(125)),
            },
            TraceRecord {
                node: NodeId(2),
                think: Duration::ZERO,
                instructions: 0,
                op: ProcOp::Store {
                    block: BlockAddr((1 << 33) + 1),
                    word: 7,
                    value: u64::MAX,
                },
                completion: None,
            },
            TraceRecord {
                node: NodeId(1),
                think: Duration::from_ps(1),
                instructions: 1,
                op: ProcOp::Store {
                    block: BlockAddr(0),
                    word: 0,
                    value: 0,
                },
                completion: Some(Duration::ZERO),
            },
        ],
    }
}

/// A v1 encoding of the sample (v1 carries no completions).
fn v1_bytes() -> (Trace, Vec<u8>) {
    let mut t = sample();
    for r in &mut t.records {
        r.completion = None;
    }
    let bytes = t.to_bytes_v1();
    (t, bytes)
}

/// A multi-chunk v2 encoding: 40 records in 8-record chunks, so flips and
/// cuts land in chunk heads, payloads, checksums, the terminator and the
/// index.
fn v2_multichunk() -> (Trace, Vec<u8>) {
    let base = sample();
    let t = Trace {
        nodes: base.nodes,
        seed: base.seed,
        workload: base.workload.clone(),
        records: (0..40).map(|i| base.records[i % 3]).collect(),
    };
    let mut w = TraceWriter::new(Vec::new(), t.nodes, t.seed, t.workload.clone())
        .unwrap()
        .chunk_records(8);
    for r in &t.records {
        w.write(*r).unwrap();
    }
    (t, w.finish().unwrap())
}

/// The error classes a byte-level corruption may legally surface as.
fn is_typed_decode_error(err: &TraceError) -> bool {
    matches!(
        err,
        TraceError::Truncated
            | TraceError::BadMagic
            | TraceError::UnsupportedVersion(_)
            | TraceError::TrailingBytes
            | TraceError::ChecksumMismatch
            | TraceError::ChunkChecksumMismatch { .. }
            | TraceError::BadChunk { .. }
            | TraceError::BadIndex(_)
            | TraceError::BadVarint
            | TraceError::BadOpKind(_)
            | TraceError::BadName
            | TraceError::FieldOverflow
            | TraceError::ZeroNodes
            | TraceError::Empty
            | TraceError::NodeOutOfRange { .. }
            | TraceError::WordOutOfRange { .. }
    )
}

// ---------------------------------------------------------------- binary v1

#[test]
fn v1_every_truncation_is_a_typed_error() {
    let (_, bytes) = v1_bytes();
    for cut in 0..bytes.len() {
        let err = Trace::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        assert!(is_typed_decode_error(&err), "cut {cut}: {err:?}");
    }
}

#[test]
fn v1_every_single_byte_corruption_is_detected() {
    let (_, bytes) = v1_bytes();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            assert!(
                Trace::from_bytes(&corrupt).is_err(),
                "flipping bit {flip:#x} of byte {i} went undetected"
            );
        }
    }
}

#[test]
fn v1_bad_magic_is_typed() {
    let (_, mut bytes) = v1_bytes();
    bytes[..MAGIC.len()].copy_from_slice(b"NOTTRACE");
    assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
    // An empty or tiny buffer is a magic failure too, not a panic.
    assert!(Trace::from_bytes(&[]).is_err());
    assert!(Trace::from_bytes(b"BASH").is_err());
}

#[test]
fn v1_future_version_is_typed() {
    let (_, mut bytes) = v1_bytes();
    bytes[MAGIC.len()] = 0x2A; // version 42, little-endian low byte
    assert_eq!(
        Trace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion(42))
    );
}

#[test]
fn v1_corrupted_checksum_is_typed() {
    let (_, bytes) = v1_bytes();
    // Flip each of the 8 trailer bytes in turn.
    for i in bytes.len() - 8..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x10;
        assert_eq!(
            Trace::from_bytes(&corrupt),
            Err(TraceError::ChecksumMismatch),
            "trailer byte {i}"
        );
    }
}

#[test]
fn v1_oversized_varint_is_typed() {
    // Header up to the record count, then a varint that never terminates
    // within 10 bytes.
    let (_, good) = v1_bytes();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&good[..20]); // magic + version + nodes + seed
    bytes.push(0); // empty workload name
    bytes.extend_from_slice(&[0xFF; 11]); // runaway record-count varint
    let err = Trace::from_bytes(&bytes).unwrap_err();
    assert_eq!(err, TraceError::BadVarint);
}

// ---------------------------------------------------------------- binary v2

#[test]
fn v2_every_truncation_is_typed_or_loses_only_the_index() {
    let (t, bytes) = v2_multichunk();
    let mut clean_cuts = 0usize;
    for cut in 0..bytes.len() {
        match Trace::from_bytes(&bytes[..cut]) {
            Err(err) => assert!(is_typed_decode_error(&err), "cut {cut}: {err:?}"),
            // Exactly one prefix may decode: the one ending right after
            // the terminator chunk, where only the *optional* index has
            // been cut away. Every record must still be present — a
            // truncation can never silently shorten the stream.
            Ok(decoded) => {
                assert_eq!(decoded, t, "cut {cut} decoded to a different trace");
                clean_cuts += 1;
            }
        }
    }
    assert!(
        clean_cuts <= 1,
        "only the index-only truncation may decode ({clean_cuts} did)"
    );
}

#[test]
fn v2_every_single_byte_corruption_is_detected() {
    let (t, bytes) = v2_multichunk();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            match Trace::from_bytes(&corrupt) {
                Err(err) => assert!(
                    is_typed_decode_error(&err),
                    "byte {i} flip {flip:#x}: untyped {err:?}"
                ),
                Ok(decoded) => assert_ne!(
                    decoded, t,
                    "byte {i} flip {flip:#x} went silently undetected"
                ),
            }
        }
    }
}

#[test]
fn v2_every_single_byte_corruption_errors() {
    // Stronger than the sweep above: for this trace, every flip must
    // *error* (not merely decode differently). Kept separate so a future
    // encoding change that legalizes some flip shows up as exactly one
    // failing assertion.
    let (_, bytes) = v2_multichunk();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            assert!(
                Trace::from_bytes(&corrupt).is_err(),
                "flipping bit {flip:#x} of byte {i} went undetected"
            );
        }
    }
}

#[test]
fn v2_corrupted_chunk_checksum_names_the_chunk() {
    let (_, bytes) = v2_multichunk();
    // Locate each chunk through the trailing index, then flip a byte in
    // the middle of its payload. The decoder must either name that chunk
    // (checksum or structure) or fail structurally inside it.
    let seekable = bash_trace::SeekableTrace::open(std::io::Cursor::new(bytes.clone())).unwrap();
    let entries = seekable.index().entries.clone();
    assert_eq!(entries.len(), 5, "40 records in 8-record chunks");
    let data_start = bash_trace::TraceReader::new(&bytes[..])
        .unwrap()
        .data_start()
        .expect("v2 trace") as usize;
    for (ci, e) in entries.iter().enumerate() {
        let target = data_start + e.offset as usize + 6; // inside the payload
        let mut corrupt = bytes.clone();
        corrupt[target] ^= 0x04;
        let err = Trace::from_bytes(&corrupt).unwrap_err();
        match err {
            TraceError::ChunkChecksumMismatch { chunk } | TraceError::BadChunk { chunk, .. } => {
                assert_eq!(chunk, ci, "wrong chunk named for corruption in chunk {ci}")
            }
            other => assert!(
                is_typed_decode_error(&other),
                "chunk {ci}: untyped {other:?}"
            ),
        }
    }
    // And the checksum trailer itself: the last 8 bytes of each chunk.
    for (ci, window) in entries.windows(2).enumerate() {
        let next_start = data_start + window[1].offset as usize;
        let mut corrupt = bytes.clone();
        corrupt[next_start - 1] ^= 0x10; // last checksum byte of chunk ci
        assert_eq!(
            Trace::from_bytes(&corrupt),
            Err(TraceError::ChunkChecksumMismatch { chunk: ci }),
            "chunk {ci} checksum corruption misattributed"
        );
    }
}

#[test]
fn v2_header_corruption_is_a_checksum_mismatch() {
    let (_, bytes) = v2_multichunk();
    // Seed field: bytes 12..20.
    for i in 12..20 {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x02;
        assert_eq!(
            Trace::from_bytes(&corrupt),
            Err(TraceError::ChecksumMismatch),
            "header byte {i}"
        );
    }
}

#[test]
fn v2_future_version_is_typed() {
    let (_, mut bytes) = v2_multichunk();
    bytes[MAGIC.len()] = 0x2A;
    assert_eq!(
        Trace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion(42))
    );
}

#[test]
fn v2_trailing_bytes_are_typed() {
    let (_, mut bytes) = v2_multichunk();
    bytes.push(0);
    assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::TrailingBytes));
}

#[test]
fn v2_index_corruption_is_typed() {
    let (_, bytes) = v2_multichunk();
    // The index block is everything after the terminator chunk; its
    // trailer is the last 12 bytes (checksum-protected payload before
    // it). Flip every byte of the whole index region.
    let seekable = bash_trace::SeekableTrace::open(std::io::Cursor::new(bytes.clone())).unwrap();
    let last = *seekable.index().entries.last().unwrap();
    let data_start = bash_trace::TraceReader::new(&bytes[..])
        .unwrap()
        .data_start()
        .expect("v2 trace") as usize;
    // Terminator sits after the last chunk; find it by decoding forward:
    // the index region starts one byte later.
    let index_start = {
        // last chunk: offset + head varints + payload + checksum; easier:
        // everything after the last chunk's end. Decode its size from the
        // file: count varint (1 byte here), payload_len varint (1–2
        // bytes) … instead, scan back from the end: index_len lives in
        // the 8-byte tail.
        let index_len =
            u32::from_le_bytes(bytes[bytes.len() - 8..bytes.len() - 4].try_into().unwrap());
        bytes.len() - 8 - index_len as usize
    };
    assert!(index_start > data_start + last.offset as usize);
    for i in index_start..bytes.len() {
        for flip in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            let err = Trace::from_bytes(&corrupt)
                .expect_err(&format!("index byte {i} flip {flip:#x} accepted"));
            assert!(is_typed_decode_error(&err), "index byte {i}: {err:?}");
        }
    }
}

// ------------------------------------------------------------------ text

#[test]
fn text_truncated_record_is_typed() {
    let mut t = sample();
    t.records[2].completion = None; // end on a completion-less store
    let text = t.to_text();
    // Cut the final line mid-record (drop the store's value field).
    let cut = text.trim_end().rsplit_once(' ').unwrap().0.to_string();
    match Trace::from_text(&cut) {
        Err(TraceError::BadTextLine { line, .. }) => assert!(line > 1),
        other => panic!("expected BadTextLine, got {other:?}"),
    }
    // Truncating the header itself is also typed.
    match Trace::from_text("bash-trace v2 nodes=3") {
        Err(TraceError::BadTextLine { line: 1, .. }) => {}
        other => panic!("expected BadTextLine at line 1, got {other:?}"),
    }
    assert!(matches!(
        Trace::from_text(""),
        Err(TraceError::BadTextLine { line: 1, .. })
    ));
}

#[test]
fn text_corrupted_fields_are_typed() {
    let base = "bash-trace v2 nodes=3 seed=48879 workload=x\n";
    for bad in [
        "0 7000 12 L 0xZZ 3\n",     // non-hex block
        "0 7000 12 X 0x5 3\n",      // unknown op kind
        "banana 7000 12 L 0x5 3\n", // non-numeric node
        "0 7000 12 L 0x5 3 9 9\n",  // trailing junk
        "0 7000 12 S 0x5 3\n",      // store missing its value
        "0 7000 12 L 0x5 3 cQQ\n",  // malformed completion latency
        "0 7000 12 L 0x5 3 x9\n",   // completion token with wrong prefix
    ] {
        let err = Trace::from_text(&format!("{base}{bad}")).unwrap_err();
        assert!(
            matches!(err, TraceError::BadTextLine { line: 2, .. }),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn text_bad_magic_and_version_are_typed() {
    assert!(matches!(
        Trace::from_text("not a trace at all\n"),
        Err(TraceError::BadTextLine { line: 1, .. })
    ));
    assert_eq!(
        Trace::from_text("bash-trace v7 nodes=1 seed=0 workload=x\n0 0 0 L 0x0 0\n"),
        Err(TraceError::UnsupportedVersion(7))
    );
}

// ------------------------------------------------------- cross-encoding

#[test]
fn lenient_encodings_reject_semantic_garbage_on_decode() {
    // v1 binary and the text form encode without validating, so garbage
    // can be serialized — and every decoder must catch it. (The v2 writer
    // refuses invalid records at encode time instead; its decoder applies
    // the same checks to hand-crafted bytes.)
    let mut t = sample();
    for r in &mut t.records {
        r.completion = None;
    }
    t.records[0].node = NodeId(9);
    assert!(matches!(
        Trace::from_bytes(&t.to_bytes_v1()),
        Err(TraceError::NodeOutOfRange { node: 9, .. })
    ));
    assert!(matches!(
        Trace::from_text(&t.to_text()),
        Err(TraceError::NodeOutOfRange { node: 9, .. })
    ));

    let mut t = sample();
    for r in &mut t.records {
        r.completion = None;
    }
    t.records[1].op = ProcOp::Load {
        block: BlockAddr(1),
        word: 8,
    };
    assert!(matches!(
        Trace::from_bytes(&t.to_bytes_v1()),
        Err(TraceError::WordOutOfRange { word: 8, .. })
    ));
    assert!(matches!(
        Trace::from_text(&t.to_text()),
        Err(TraceError::WordOutOfRange { word: 8, .. })
    ));
}

#[test]
fn v1_and_v2_decode_to_the_same_trace() {
    let (t, v1) = v1_bytes();
    let via_v1 = Trace::from_bytes(&v1).unwrap();
    let via_v2 = Trace::from_bytes(&t.to_bytes()).unwrap();
    assert_eq!(via_v1, via_v2);
    assert_eq!(via_v1, t);
}
