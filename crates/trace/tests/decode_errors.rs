//! Systematic decode-error coverage for both trace encodings: every
//! corruption class must surface as a **typed** [`TraceError`] — never a
//! panic, never a silently different trace.

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Duration;
use bash_net::NodeId;
use bash_trace::{binary::MAGIC, Trace, TraceError, TraceRecord};

fn sample() -> Trace {
    Trace {
        nodes: 3,
        seed: 0xBEEF,
        workload: "decode errors".to_string(),
        records: vec![
            TraceRecord {
                node: NodeId(0),
                think: Duration::from_ns(7),
                instructions: 12,
                op: ProcOp::Load {
                    block: BlockAddr(5),
                    word: 3,
                },
            },
            TraceRecord {
                node: NodeId(2),
                think: Duration::ZERO,
                instructions: 0,
                op: ProcOp::Store {
                    block: BlockAddr((1 << 33) + 1),
                    word: 7,
                    value: u64::MAX,
                },
            },
            TraceRecord {
                node: NodeId(1),
                think: Duration::from_ps(1),
                instructions: 1,
                op: ProcOp::Store {
                    block: BlockAddr(0),
                    word: 0,
                    value: 0,
                },
            },
        ],
    }
}

// ---------------------------------------------------------------- binary

#[test]
fn binary_every_truncation_is_a_typed_error() {
    let bytes = sample().to_bytes();
    for cut in 0..bytes.len() {
        let err = Trace::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        // Truncation must read as exactly that — truncation (or a magic /
        // structural failure for sub-header prefixes), never checksum
        // noise from a partial trailer being misinterpreted.
        assert!(
            matches!(
                err,
                TraceError::Truncated
                    | TraceError::BadMagic
                    | TraceError::TrailingBytes
                    | TraceError::ChecksumMismatch
                    | TraceError::BadVarint
                    | TraceError::BadOpKind(_)
                    | TraceError::FieldOverflow
            ),
            "cut {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn binary_every_single_byte_corruption_is_detected() {
    let bytes = sample().to_bytes();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            assert!(
                Trace::from_bytes(&corrupt).is_err(),
                "flipping bit {flip:#x} of byte {i} went undetected"
            );
        }
    }
}

#[test]
fn binary_bad_magic_is_typed() {
    let mut bytes = sample().to_bytes();
    bytes[..MAGIC.len()].copy_from_slice(b"NOTTRACE");
    assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
    // An empty or tiny buffer is a magic failure too, not a panic.
    assert!(Trace::from_bytes(&[]).is_err());
    assert!(Trace::from_bytes(b"BASH").is_err());
}

#[test]
fn binary_future_version_is_typed() {
    let mut bytes = sample().to_bytes();
    bytes[MAGIC.len()] = 0x2A; // version 42, little-endian low byte
    assert_eq!(
        Trace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion(42))
    );
}

#[test]
fn binary_corrupted_checksum_is_typed() {
    let bytes = sample().to_bytes();
    // Flip each of the 8 trailer bytes in turn.
    for i in bytes.len() - 8..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x10;
        assert_eq!(
            Trace::from_bytes(&corrupt),
            Err(TraceError::ChecksumMismatch),
            "trailer byte {i}"
        );
    }
}

#[test]
fn binary_oversized_varint_is_typed() {
    // Header up to the record count, then a varint that never terminates
    // within 10 bytes.
    let good = sample().to_bytes();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&good[..20]); // magic + version + nodes + seed
    bytes.push(0); // empty workload name
    bytes.extend_from_slice(&[0xFF; 11]); // runaway record-count varint
    let err = Trace::from_bytes(&bytes).unwrap_err();
    assert_eq!(err, TraceError::BadVarint);
}

// ------------------------------------------------------------------ text

#[test]
fn text_truncated_record_is_typed() {
    let t = sample();
    let text = t.to_text();
    // Cut the final line mid-record (drop the store's value field).
    let cut = text.trim_end().rsplit_once(' ').unwrap().0.to_string();
    match Trace::from_text(&cut) {
        Err(TraceError::BadTextLine { line, .. }) => assert!(line > 1),
        other => panic!("expected BadTextLine, got {other:?}"),
    }
    // Truncating the header itself is also typed.
    match Trace::from_text("bash-trace v1 nodes=3") {
        Err(TraceError::BadTextLine { line: 1, .. }) => {}
        other => panic!("expected BadTextLine at line 1, got {other:?}"),
    }
    assert!(matches!(
        Trace::from_text(""),
        Err(TraceError::BadTextLine { line: 1, .. })
    ));
}

#[test]
fn text_corrupted_fields_are_typed() {
    let base = "bash-trace v1 nodes=3 seed=48879 workload=x\n";
    for bad in [
        "0 7000 12 L 0xZZ 3\n",     // non-hex block
        "0 7000 12 X 0x5 3\n",      // unknown op kind
        "banana 7000 12 L 0x5 3\n", // non-numeric node
        "0 7000 12 L 0x5 3 9 9\n",  // trailing junk
        "0 7000 12 S 0x5 3\n",      // store missing its value
    ] {
        let err = Trace::from_text(&format!("{base}{bad}")).unwrap_err();
        assert!(
            matches!(err, TraceError::BadTextLine { line: 2, .. }),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn text_bad_magic_and_version_are_typed() {
    assert!(matches!(
        Trace::from_text("not a trace at all\n"),
        Err(TraceError::BadTextLine { line: 1, .. })
    ));
    assert_eq!(
        Trace::from_text("bash-trace v7 nodes=1 seed=0 workload=x\n0 0 0 L 0x0 0\n"),
        Err(TraceError::UnsupportedVersion(7))
    );
}

// ------------------------------------------------------- cross-encoding

#[test]
fn both_encodings_reject_semantic_garbage_identically() {
    // Out-of-range node and word fail validation regardless of encoding.
    let mut t = sample();
    t.records[0].node = NodeId(9);
    let bin = t.to_bytes();
    let text = t.to_text();
    assert!(matches!(
        Trace::from_bytes(&bin),
        Err(TraceError::NodeOutOfRange { node: 9, .. })
    ));
    assert!(matches!(
        Trace::from_text(&text),
        Err(TraceError::NodeOutOfRange { node: 9, .. })
    ));

    let mut t = sample();
    t.records[1].op = ProcOp::Load {
        block: BlockAddr(1),
        word: 8,
    };
    assert!(matches!(
        Trace::from_bytes(&t.to_bytes()),
        Err(TraceError::WordOutOfRange { word: 8, .. })
    ));
    assert!(matches!(
        Trace::from_text(&t.to_text()),
        Err(TraceError::WordOutOfRange { word: 8, .. })
    ));
}
