//! Run statistics: everything the paper's figures report.

use bash_kernel::Duration;
use bash_net::FaultStats;

/// Per-directed-link statistics of one measured window on a routed fabric
/// topology. The crossbar models endpoint links only and reports none.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStat {
    /// Source vertex of the directed link. Vertices `>= nodes` are
    /// internal switch vertices (the star topology's hub).
    pub from: u16,
    /// Destination vertex of the directed link.
    pub to: u16,
    /// Bytes forwarded over the link in the measured window.
    pub bytes: u64,
    /// Messages forwarded over the link in the measured window.
    pub messages: u64,
    /// Peak same-instant enqueue demand observed over the whole run.
    pub peak_demand: u32,
    /// Fraction of the measured window the link spent transmitting.
    pub busy_fraction: f64,
}

/// Two-level-hierarchy statistics of one measured window: how traffic
/// split across cluster boundaries and how requests spread over the
/// directory-spine banks. Only present when the run was configured with
/// a [`HierarchyConfig`](bash_coherence::HierarchyConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Number of snooping clusters.
    pub clusters: u16,
    /// Number of directory-spine banks.
    pub banks: u16,
    /// Bytes delivered to destinations in the sender's own cluster.
    pub intra_cluster_bytes: u64,
    /// Bytes delivered across a cluster boundary (spine traffic).
    pub inter_cluster_bytes: u64,
    /// Coherence requests handled per spine bank, indexed by bank.
    pub bank_requests: Vec<u64>,
}

impl HierarchyStats {
    /// Fraction of delivered bytes that crossed a cluster boundary.
    pub fn inter_cluster_fraction(&self) -> f64 {
        let total = self.intra_cluster_bytes + self.inter_cluster_bytes;
        if total == 0 {
            0.0
        } else {
            self.inter_cluster_bytes as f64 / total as f64
        }
    }

    /// Peak-to-mean imbalance across the spine banks (1.0 = perfectly
    /// balanced; 0.0 when no bank handled a request).
    pub fn bank_balance(&self) -> f64 {
        let peak = self.bank_requests.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            return 0.0;
        }
        let mean = self.bank_requests.iter().sum::<u64>() as f64 / self.bank_requests.len() as f64;
        mean / peak as f64
    }
}

/// Aggregate results of one measured simulation window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Workload display name.
    pub workload: String,
    /// Measured (post-warmup) simulated time.
    pub duration: Duration,
    /// Completed memory operations (lock acquires for the microbenchmark).
    pub ops_completed: u64,
    /// Instructions retired (macro workloads).
    pub retired_instructions: u64,
    /// Demand misses issued.
    pub misses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Misses served by another cache (sharing misses).
    pub sharing_misses: u64,
    /// Mean demand-miss latency in ns (Figure 9's y-axis).
    pub avg_miss_latency_ns: f64,
    /// Standard deviation of the miss latency.
    pub stddev_miss_latency_ns: f64,
    /// Largest observed miss latency in ns.
    pub max_miss_latency_ns: f64,
    /// Mean endpoint link utilization in `[0,1]` (Figure 6's y-axis).
    pub link_utilization: f64,
    /// Bytes through all endpoint links (bandwidth footprint).
    pub link_bytes: u64,
    /// Requests broadcast by caches.
    pub broadcasts: u64,
    /// Requests unicast by caches (dualcast for BASH).
    pub unicasts: u64,
    /// Writebacks started.
    pub writebacks: u64,
    /// BASH home retries injected.
    pub retries: u64,
    /// BASH retry escalations to full broadcast.
    pub broadcast_escalations: u64,
    /// BASH nacks sent by homes.
    pub nacks: u64,
    /// Simulation events processed in the window (engine throughput).
    pub events_processed: u64,
    /// High-water mark of the event queue over the whole run — the capacity
    /// `System::new` should pre-allocate for this workload shape.
    pub peak_queue_len: u64,
    /// Per-directed-link stats, in the topology's link order (empty on the
    /// crossbar, which has no routed links).
    pub links: Vec<LinkStat>,
    /// Whole-run fault-plane counters (drops, retransmits, link deaths);
    /// `None` unless a fault plane was configured.
    pub fault: Option<FaultStats>,
    /// Cluster/bank traffic split; `None` unless the run used a two-level
    /// hierarchy.
    pub hierarchy: Option<HierarchyStats>,
}

impl RunStats {
    /// Completed operations per second — the microbenchmark performance
    /// metric ("lock acquires per nanosecond", normalized in the figures).
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.duration.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.ops_completed as f64 / s
        }
    }

    /// Instructions per second — the macro-workload performance metric.
    pub fn instructions_per_sec(&self) -> f64 {
        let s = self.duration.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.retired_instructions as f64 / s
        }
    }

    /// Fraction of cache requests that were broadcast (1.0 = pure
    /// snooping, 0.0 = pure directory behaviour).
    pub fn broadcast_fraction(&self) -> f64 {
        let total = self.broadcasts + self.unicasts;
        if total == 0 {
            0.0
        } else {
            self.broadcasts as f64 / total as f64
        }
    }

    /// Fraction of misses served cache-to-cache.
    pub fn sharing_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.sharing_misses as f64 / self.misses as f64
        }
    }

    /// Average link bytes consumed per miss (bandwidth cost).
    pub fn bytes_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.link_bytes as f64 / self.misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            protocol: "BASH",
            workload: "test".into(),
            duration: Duration::from_ns(1_000_000),
            ops_completed: 500,
            retired_instructions: 4000,
            misses: 400,
            hits: 100,
            sharing_misses: 300,
            avg_miss_latency_ns: 150.0,
            stddev_miss_latency_ns: 20.0,
            max_miss_latency_ns: 400.0,
            link_utilization: 0.74,
            link_bytes: 40_000,
            broadcasts: 300,
            unicasts: 100,
            writebacks: 5,
            retries: 40,
            broadcast_escalations: 1,
            nacks: 0,
            events_processed: 123_456,
            peak_queue_len: 97,
            links: Vec::new(),
            fault: None,
            hierarchy: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.ops_per_sec() - 500.0 / 1e-3).abs() < 1e-6);
        assert!((s.instructions_per_sec() - 4000.0 / 1e-3).abs() < 1e-6);
        assert!((s.broadcast_fraction() - 0.75).abs() < 1e-12);
        assert!((s.sharing_fraction() - 0.75).abs() < 1e-12);
        assert!((s.bytes_per_miss() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_derived_metrics() {
        let h = HierarchyStats {
            clusters: 4,
            banks: 4,
            intra_cluster_bytes: 3000,
            inter_cluster_bytes: 1000,
            bank_requests: vec![10, 20, 30, 40],
        };
        assert!((h.inter_cluster_fraction() - 0.25).abs() < 1e-12);
        assert!((h.bank_balance() - 25.0 / 40.0).abs() < 1e-12);
        let empty = HierarchyStats {
            clusters: 2,
            banks: 2,
            intra_cluster_bytes: 0,
            inter_cluster_bytes: 0,
            bank_requests: vec![0, 0],
        };
        assert_eq!(empty.inter_cluster_fraction(), 0.0);
        assert_eq!(empty.bank_balance(), 0.0);
    }

    #[test]
    fn zero_duration_is_safe() {
        let mut s = sample();
        s.duration = Duration::ZERO;
        assert_eq!(s.ops_per_sec(), 0.0);
        assert_eq!(s.instructions_per_sec(), 0.0);
    }
}
