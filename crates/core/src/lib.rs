//! # bash-sim — Bandwidth Adaptive Snooping, reproduced
//!
//! A discrete-event simulator of the system evaluated in *"Bandwidth
//! Adaptive Snooping"* (Martin, Sorin, Hill, Wood — HPCA 2002): integrated
//! processor/memory nodes on a fixed-latency, bandwidth-limited crossbar,
//! running one of three MOSI coherence protocols — broadcast **Snooping**,
//! a GS320-style **Directory**, or the **BASH** hybrid that probabilistically
//! chooses between broadcasting and unicasting each request based on a local
//! estimate of link utilization.
//!
//! # Quickstart
//!
//! ```
//! use bash_kernel::Duration;
//! use bash_coherence::ProtocolKind;
//! use bash_sim::{System, SystemConfig};
//! use bash_workloads::LockingMicrobench;
//!
//! let cfg = SystemConfig::paper_default(ProtocolKind::Bash, 8, 1600);
//! let workload = LockingMicrobench::new(8, 256, Duration::ZERO, 1);
//! let stats = System::run(
//!     cfg,
//!     workload,
//!     Duration::from_ns(200_000),  // warmup
//!     Duration::from_ns(400_000),  // measurement
//! );
//! assert!(stats.misses > 0);
//! assert!(stats.avg_miss_latency_ns > 0.0);
//! ```
//!
//! See the `bash-experiments` binary for the harness that regenerates every
//! figure and table of the paper, and DESIGN.md / EXPERIMENTS.md at the
//! repository root for the experiment index.

pub mod config;
pub mod stats;
pub mod system;

pub use bash_coherence::HierarchyConfig;
pub use config::{FaultInjection, SystemConfig, WatchdogBudget};
pub use stats::{HierarchyStats, LinkStat, RunStats};
pub use system::{RunError, System, WedgeCause, WedgeDiagnostic};
