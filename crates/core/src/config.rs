//! System configuration: the paper's target system (§4.2, §5.2) with every
//! modeling knob exposed.

use bash_adaptive::AdaptorConfig;
use bash_coherence::{CacheGeometry, HierarchyConfig, ProtocolKind};
use bash_kernel::{Duration, QueueKind};
use bash_net::{FaultPlaneConfig, Jitter, TopologyKind};

/// Deliberate fault injection — the verification harness's self-test
/// hook. A protocol tester is only trustworthy if it demonstrably catches
/// broken protocols; injecting a fault here produces a "broken protocol
/// variant" whose violations the harness must detect and whose failing
/// trace the minimizer must shrink. Never enabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// Corrupt the value returned by every `period`-th completed load
    /// (counting across all nodes; `period = 1` corrupts every load),
    /// emulating a protocol that returns stale or fabricated data to the
    /// processor.
    CorruptLoads {
        /// Corruption period in completed loads (must be ≥ 1).
        period: u64,
    },
    /// Drop every `period`-th invalidation: a GetM delivery addressed to a
    /// bystander cache holding the block in the Shared state is silently
    /// discarded instead of invalidating the copy, emulating a lost
    /// invalidation message. The stale copy keeps serving local loads, so
    /// the oracle must flag the protocol (stale or out-of-thin-air
    /// values). Only pure sharers are targeted — an owner must still
    /// supply data or the system would deadlock rather than misbehave.
    DropInvalidations {
        /// Drop period in eligible invalidation deliveries (must be ≥ 1).
        period: u64,
    },
    /// Redeliver every `period`-th eligible request — a GetM arriving at
    /// its home memory controller, the ownership-transfer point all three
    /// protocols share — a second time, 20 µs later, emulating a network
    /// that duplicates messages. The duplicate fires only if ownership has
    /// moved to *another* cache in the meantime (a duplicate the home
    /// would treat as idempotent proves nothing), so the home re-runs the
    /// ownership transfer and corrupts the owner record out from under the
    /// real owner: its writeback is then discarded as stale (dirty data
    /// lost → stale memory values) or requests for the block wedge with an
    /// owner that will never answer (quiescence failure). Either way the
    /// oracle must flag the run.
    DuplicateDeliveries {
        /// Duplication period in eligible deliveries (must be ≥ 1).
        period: u64,
    },
    /// Deliver totally ordered messages out of order: per destination
    /// node, hold ordered deliveries back and release each batch of
    /// `window` in reverse, so different nodes observe overlapping
    /// requests in different orders — emulating an interconnect that lost
    /// its total-order guarantee. Protocol serialization breaks down (two
    /// caches both believe they won an ownership race, writebacks squash
    /// at the cache but not at the home, …), which the oracle must flag as
    /// stale values or a quiescence failure.
    ReorderOrdered {
        /// Reorder window in ordered deliveries per node (must be ≥ 2).
        window: u64,
    },
    /// Silently lose a sharer from the home's bookkeeping: after every
    /// `period`-th eligible request (a GetS/GetM reaching its home memory
    /// controller), the home's record of the *requestor* is erased — it is
    /// removed from the sharer bitmap, and if it was recorded as the
    /// owner the record is reset to memory. The home subsequently skips
    /// the forgotten node when invalidating (stale values survive in its
    /// cache) or fetches stale data from memory while the forgotten owner
    /// holds the only dirty copy. The oracle must flag either symptom;
    /// the structural sweep also sees the record/reality mismatch.
    StaleSharerMask {
        /// Corruption period in eligible home-bound requests (must be ≥ 1).
        period: u64,
    },
}

impl FaultInjection {
    /// True for the broken-*network* faults, which deliberately violate
    /// the delivery contract the controllers' internal asserts encode; the
    /// driver switches the controllers into tolerant (drop-and-count) mode
    /// for them so the injected breakage surfaces as an oracle violation
    /// rather than a panic.
    pub fn breaks_network(self) -> bool {
        matches!(
            self,
            FaultInjection::DuplicateDeliveries { .. }
                | FaultInjection::ReorderOrdered { .. }
                | FaultInjection::StaleSharerMask { .. }
        )
    }
}

/// Full configuration of a simulated system.
///
/// Defaults ([`SystemConfig::paper_default`]) reproduce the paper's timing:
/// 50 ns crossbar traversal, 80 ns DRAM/directory access, 25 ns cache data
/// provision — giving 180 ns memory fetches, 125 ns snooping cache-to-cache
/// transfers and 255 ns directory (or BASH-retry) cache-to-cache transfers.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which coherence protocol to run.
    pub protocol: ProtocolKind,
    /// Number of integrated processor/memory nodes.
    pub nodes: u16,
    /// Endpoint link bandwidth in MB/s (the paper's x-axis).
    pub link_mbps: u64,
    /// Interconnect topology. [`TopologyKind::Crossbar`] (the default) is
    /// the paper's contended-endpoint crossbar; every other kind routes
    /// messages hop-by-hop through the fabric engine with per-directed-link
    /// contention.
    pub topology: TopologyKind,
    /// Fixed crossbar traversal latency.
    pub traversal: Duration,
    /// DRAM / directory access latency.
    pub dram_latency: Duration,
    /// Cache-controller latency to provide data to the interconnect.
    pub cache_provide_latency: Duration,
    /// L2 cache geometry.
    pub cache_geometry: CacheGeometry,
    /// Bandwidth multiplier for full broadcasts (4 in Figure 11).
    pub broadcast_cost_multiplier: u32,
    /// The adaptive mechanism's parameters (BASH only).
    pub adaptor: AdaptorConfig,
    /// Two-level hierarchical coherence: snooping clusters under a
    /// sharded directory spine. `None` (the default) runs the flat
    /// paper system. With a hierarchy every protocol personality rides
    /// the hierarchical BASH engine — Snooping pins cluster-casts,
    /// Directory pins spine dualcasts, BASH adapts per cluster.
    pub hierarchy: Option<HierarchyConfig>,
    /// Serialize DRAM accesses (off per the paper's endpoint-contention-only
    /// model; on for the memory-occupancy ablation).
    pub serialize_dram: bool,
    /// BASH home retry-buffer capacity (per memory controller).
    pub retry_capacity: usize,
    /// Record transition coverage (Table 1 / tester runs).
    pub coverage: bool,
    /// Capture every processor op the workload issues into a replayable
    /// [`bash_trace::Trace`] (see [`System::take_captured_trace`]).
    ///
    /// [`System::take_captured_trace`]: crate::System::take_captured_trace
    pub capture_ops: bool,
    /// Also stamp every captured op with its issue→complete latency
    /// (requires [`capture_ops`](Self::capture_ops)), producing a
    /// completion-bearing trace that latency-diff passes can consume.
    pub capture_completions: bool,
    /// Message latency perturbation (tester and error-bar methodology).
    pub jitter: Jitter,
    /// Deliberate fault injection (verification-harness self-tests only;
    /// `None` in every normal run).
    pub fault: Option<FaultInjection>,
    /// Deterministic interconnect fault plane (loss, corruption, delay,
    /// outages) plus the reliable-delivery transport. Requires a routed
    /// fabric topology — the crossbar has no links to fault.
    pub fault_plane: Option<FaultPlaneConfig>,
    /// Quiescence watchdog: event / virtual-time budgets that convert a
    /// wedged run into a structured diagnostic instead of an endless loop
    /// (see [`System::try_run_to_idle`](crate::System::try_run_to_idle)).
    pub watchdog: Option<WatchdogBudget>,
    /// Event-queue engine. The default calendar queue pops in exactly the
    /// binary heap's order (FIFO-stable per timestamp), so reports are
    /// byte-identical across the two — this knob exists for A/B
    /// benchmarking and as an escape hatch.
    pub queue: QueueKind,
    /// Master RNG seed.
    pub seed: u64,
}

/// Budgets for the quiescence watchdog. A run exceeding either budget is
/// declared wedged and reported with a structured diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogBudget {
    /// Maximum events processed before the run is declared wedged
    /// (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Maximum virtual time before the run is declared wedged
    /// (`None` = unlimited).
    pub max_virtual_time: Option<Duration>,
}

impl WatchdogBudget {
    /// A budget on processed events only.
    pub fn events(max: u64) -> Self {
        WatchdogBudget {
            max_events: Some(max),
            max_virtual_time: None,
        }
    }

    /// A budget on virtual time only.
    pub fn virtual_time(max: Duration) -> Self {
        WatchdogBudget {
            max_events: None,
            max_virtual_time: Some(max),
        }
    }
}

impl SystemConfig {
    /// The paper's target system for the given protocol / size / bandwidth.
    pub fn paper_default(protocol: ProtocolKind, nodes: u16, link_mbps: u64) -> Self {
        SystemConfig {
            protocol,
            nodes,
            link_mbps,
            topology: TopologyKind::Crossbar,
            traversal: Duration::from_ns(50),
            dram_latency: Duration::from_ns(80),
            cache_provide_latency: Duration::from_ns(25),
            cache_geometry: CacheGeometry {
                sets: 1024,
                ways: 4,
            },
            broadcast_cost_multiplier: 1,
            adaptor: AdaptorConfig::paper_default(),
            hierarchy: None,
            serialize_dram: false,
            retry_capacity: 64,
            coverage: false,
            capture_ops: false,
            capture_completions: false,
            jitter: Jitter::None,
            fault: None,
            fault_plane: None,
            watchdog: None,
            queue: QueueKind::default(),
            seed: 0xBA5E,
        }
    }

    /// Overrides the cache geometry.
    pub fn with_cache(mut self, geometry: CacheGeometry) -> Self {
        self.cache_geometry = geometry;
        self
    }

    /// Overrides the interconnect topology.
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the adaptive mechanism configuration.
    pub fn with_adaptor(mut self, adaptor: AdaptorConfig) -> Self {
        self.adaptor = adaptor;
        self
    }

    /// Enables two-level hierarchical coherence (snooping clusters under
    /// a sharded directory spine).
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Sets the broadcast cost multiplier (Figure 11 uses 4).
    pub fn with_broadcast_cost(mut self, multiplier: u32) -> Self {
        self.broadcast_cost_multiplier = multiplier;
        self
    }

    /// Sets the RNG seed (perturbation methodology: run several seeds and
    /// aggregate).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables transition-coverage recording.
    pub fn with_coverage(mut self) -> Self {
        self.coverage = true;
        self
    }

    /// Enables op capture: the run records every issued processor op into
    /// a replayable trace.
    pub fn with_capture(mut self) -> Self {
        self.capture_ops = true;
        self
    }

    /// Enables op capture *with* completion events: every captured op is
    /// stamped with the issue→complete latency the run observed.
    pub fn with_capture_completions(mut self) -> Self {
        self.capture_ops = true;
        self.capture_completions = true;
        self
    }

    /// Enables message-latency jitter.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Enables deliberate fault injection (harness self-tests).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a deterministic interconnect fault plane (requires a
    /// fabric topology; see [`Self::with_topology`]).
    pub fn with_fault_plane(mut self, plane: FaultPlaneConfig) -> Self {
        self.fault_plane = Some(plane);
        self
    }

    /// Arms the quiescence watchdog.
    pub fn with_watchdog(mut self, budget: WatchdogBudget) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Selects the event-queue engine (A/B benchmarking; the calendar
    /// default and the heap pop in identical order).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero nodes/bandwidth, multiplier < 1).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.link_mbps > 0, "bandwidth must be positive");
        assert!(self.broadcast_cost_multiplier >= 1);
        assert!(
            self.retry_capacity > 0,
            "BASH needs at least one retry buffer"
        );
        assert!(self.cache_geometry.sets > 0 && self.cache_geometry.ways > 0);
        if let Some(h) = &self.hierarchy {
            if let Err(reason) = h.check(self.nodes) {
                panic!("invalid hierarchy: {reason}");
            }
        }
        if let Some(
            FaultInjection::CorruptLoads { period }
            | FaultInjection::DropInvalidations { period }
            | FaultInjection::DuplicateDeliveries { period }
            | FaultInjection::StaleSharerMask { period },
        ) = self.fault
        {
            assert!(period > 0, "fault period must be at least 1");
        }
        if let Some(FaultInjection::ReorderOrdered { window }) = self.fault {
            assert!(window >= 2, "reorder window must be at least 2");
        }
        if let Some(plane) = &self.fault_plane {
            assert!(
                self.topology != TopologyKind::Crossbar,
                "the fault plane requires a fabric topology (the crossbar has no links)"
            );
            plane.validate();
        }
        assert!(
            self.capture_ops || !self.capture_completions,
            "completion capture requires op capture"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        let c = SystemConfig::paper_default(ProtocolKind::Bash, 16, 1600);
        // 50 + 80 + 50 = 180 ns memory fetch.
        assert_eq!((c.traversal + c.dram_latency + c.traversal).as_ns(), 180);
        // 50 + 25 + 50 = 125 ns snooping cache-to-cache.
        assert_eq!(
            (c.traversal + c.cache_provide_latency + c.traversal).as_ns(),
            125
        );
        // 50 + 80 + 50 + 25 + 50 = 255 ns directory cache-to-cache.
        assert_eq!(
            (c.traversal + c.dram_latency + c.traversal + c.cache_provide_latency + c.traversal)
                .as_ns(),
            255
        );
    }

    #[test]
    fn builders_apply() {
        let c = SystemConfig::paper_default(ProtocolKind::Snooping, 4, 800)
            .with_broadcast_cost(4)
            .with_seed(7)
            .with_coverage();
        assert_eq!(c.broadcast_cost_multiplier, 4);
        assert_eq!(c.seed, 7);
        assert!(c.coverage);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "invalid hierarchy")]
    fn misfit_hierarchy_rejected() {
        SystemConfig::paper_default(ProtocolKind::Bash, 8, 800)
            .with_hierarchy(HierarchyConfig::new(3, 2))
            .validate();
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let mut c = SystemConfig::paper_default(ProtocolKind::Snooping, 4, 800);
        c.link_mbps = 0;
        c.validate();
    }
}
