//! The system driver: event loop, processors, and measurement.
//!
//! A [`System`] owns the crossbar, one cache controller + one memory
//! controller per node, one blocking processor per node, and the workload.
//! It dispatches four event kinds:
//!
//! * `Inject` — a controller-delayed message enters the node's link queue;
//! * `Net` — internal crossbar progress (transmit/traverse/deliver);
//! * `ProcIssue` — a processor finished thinking and issues its operation;
//! * `Sample` — the adaptive mechanism's per-512-cycle utilization sample
//!   (BASH only).
//!
//! Warmup/measurement follows the paper: run to steady state, snapshot all
//! counters, measure, report deltas.

use bash_coherence::common::{CacheStats, MemStats};
use bash_coherence::{
    route, AccessOutcome, Action, ActionSink, CacheCtrl, MemCtrl, Mosi, Owner, ProcOp, ProtoMsg,
    ProtocolKind, TxnId, TxnKind,
};
use bash_kernel::stats::{RunningStat, WindowDelta};
use bash_kernel::{Duration, EventQueue, Time};
use bash_net::{
    FaultStats, Interconnect, Jitter, Message, MsgArena, MsgRef, NetConfig, NetEvent, NetStep,
    NodeId, Ordered, OrderingMode,
};
use bash_trace::{Trace, TraceCapture, TraceRecord};
use bash_workloads::{WorkItem, Workload};

use crate::config::{FaultInjection, SystemConfig, WatchdogBudget};
use crate::stats::{HierarchyStats, LinkStat, RunStats};

/// Why the quiescence watchdog declared a run wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WedgeCause {
    /// The event queue drained but the system never reached quiescence —
    /// some transaction is waiting on a message that will never arrive.
    Stalled,
    /// The run processed more events than [`WatchdogBudget::max_events`].
    EventBudget {
        /// The configured event budget.
        limit: u64,
    },
    /// The run advanced past [`WatchdogBudget::max_virtual_time`].
    TimeBudget {
        /// The configured virtual-time budget.
        limit: Duration,
    },
}

impl std::fmt::Display for WedgeCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WedgeCause::Stalled => write!(f, "stalled (queue drained, not quiescent)"),
            WedgeCause::EventBudget { limit } => write!(f, "event budget ({limit}) exceeded"),
            WedgeCause::TimeBudget { limit } => write!(f, "virtual-time budget ({limit}) exceeded"),
        }
    }
}

/// Structured diagnostic of a wedged run: what stalled, where, and what
/// the interconnect's fault plane was doing at the time.
#[derive(Debug, Clone, PartialEq)]
pub struct WedgeDiagnostic {
    /// What tripped the watchdog.
    pub cause: WedgeCause,
    /// Virtual time at detection.
    pub at: Time,
    /// Total events processed when the watchdog fired.
    pub events_processed: u64,
    /// Events still queued (in-flight messages and timers).
    pub queue_len: usize,
    /// Nodes whose processor is stuck on an outstanding miss.
    pub pending_nodes: Vec<u16>,
    /// Nodes whose cache controller holds an unfinished transaction.
    pub busy_caches: Vec<u16>,
    /// Nodes whose memory controller holds an unfinished transaction.
    pub busy_mems: Vec<u16>,
    /// Fault-plane counters at detection (drops, retransmits, dead
    /// links, undeliverable copies), when a fault plane is configured.
    pub fault: Option<FaultStats>,
}

impl std::fmt::Display for WedgeDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Wedged: {} at {} after {} events; {} queued; \
             pending procs {:?}, busy caches {:?}, busy mems {:?}",
            self.cause,
            self.at,
            self.events_processed,
            self.queue_len,
            self.pending_nodes,
            self.busy_caches,
            self.busy_mems,
        )?;
        if let Some(fs) = &self.fault {
            write!(
                f,
                "; fault plane: dropped={} corrupted={} down_drops={} retransmits={} \
                 dead_links={} rerouted={} undeliverable={}",
                fs.dropped,
                fs.corrupted,
                fs.down_drops,
                fs.retransmits,
                fs.dead_links,
                fs.rerouted,
                fs.undeliverable,
            )?;
        }
        Ok(())
    }
}

/// A structured run failure (see [`System::try_run_to_idle`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The run wedged: a watchdog budget expired, or the event queue
    /// drained without the system reaching quiescence.
    Wedged(Box<WedgeDiagnostic>),
}

impl RunError {
    /// The wedge diagnostic carried by this error.
    pub fn diagnostic(&self) -> &WedgeDiagnostic {
        match self {
            RunError::Wedged(d) => d,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Wedged(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

/// Driver events.
#[derive(Debug)]
enum Event {
    /// Crossbar-internal progress.
    Net(NetEvent<ProtoMsg>),
    /// A message enters the sender's link queue (after controller latency).
    Inject(Message<ProtoMsg>),
    /// A processor issues its queued operation.
    ProcIssue(NodeId),
    /// Adaptive-mechanism sampling tick (all nodes).
    Sample,
    /// Fault injection: a duplicated copy of `msg` arrives at `dst`'s
    /// memory controller ([`FaultInjection::DuplicateDeliveries`]). The
    /// handle carries a retained arena reference, released on delivery.
    Redeliver {
        dst: NodeId,
        msg: MsgRef,
        order: Option<u64>,
    },
}

/// Appends one pulled work item to the capture hook, if it is enabled.
fn capture_item(capture: &mut Option<TraceCapture>, node: NodeId, item: &WorkItem) {
    if let Some(writer) = capture {
        writer.record(TraceRecord {
            node,
            think: item.think,
            instructions: item.instructions,
            op: item.op,
            completion: None,
        });
    }
}

/// A delivery held back by [`FaultInjection::ReorderOrdered`]: the
/// message (whose arena reference stays parked with it) plus the network
/// order number it arrived with.
type HeldDelivery = (MsgRef, Option<u64>);

/// An outstanding demand miss at a processor.
#[derive(Debug)]
struct PendingMiss {
    op: ProcOp,
    instructions: u64,
    issued_at: Time,
    txn: TxnId,
}

/// A blocking processor.
#[derive(Debug, Default)]
struct Processor {
    queued: Option<WorkItem>,
    pending: Option<PendingMiss>,
    done: bool,
}

/// Cumulative driver-side counters (snapshotted for measurement windows).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    ops: u64,
    retired: u64,
}

#[derive(Debug, Clone, Default)]
struct Snapshot {
    at: Time,
    counters: Counters,
    cache: CacheStats,
    mem: MemStats,
    link_busy_ps: u64,
    link_bytes: u64,
    /// Per-directed-link `(busy_ps, bytes, messages)` on a fabric topology
    /// (empty on the crossbar).
    per_link: Vec<(u64, u64, u64)>,
    events: u64,
    /// Hierarchy traffic counters `(intra_bytes, inter_bytes)` (zero
    /// without a hierarchy).
    hier_bytes: (u64, u64),
    /// Per-spine-bank request counts (empty without a hierarchy).
    hier_banks: Vec<u64>,
}

/// A running simulated system.
pub struct System<W: Workload> {
    cfg: SystemConfig,
    net: Interconnect<ProtoMsg>,
    caches: Vec<CacheCtrl>,
    mems: Vec<MemCtrl>,
    procs: Vec<Processor>,
    workload: W,
    events: EventQueue<Event>,
    /// The in-flight message slab shared with the interconnect: payloads
    /// live here from switch entry until the last delivery consumes them.
    arena: MsgArena<ProtoMsg>,
    now: Time,
    /// Reusable action buffer shared by every controller handler call —
    /// the zero-allocation half of the hot event loop.
    sink: ActionSink,
    /// Reusable crossbar step buffer (schedule + deliveries) — the other
    /// half.
    net_step: NetStep<ProtoMsg>,
    window_deltas: Vec<WindowDelta>,
    /// Per-node × per-incident-link window trackers feeding the adaptive
    /// mechanism's local-utilization input (fabric topologies only).
    local_deltas: Vec<Vec<WindowDelta>>,
    counters: Counters,
    miss_latency: RunningStat,
    measuring: bool,
    measure_start: Snapshot,
    policy_trace: Option<Vec<(Time, f64)>>,
    delivery_trace: Option<Vec<String>>,
    /// The op-capture hook (enabled with [`SystemConfig::with_capture`]):
    /// every work item the workload hands a processor is appended here, in
    /// issue-request order, producing a replayable reference trace. With
    /// [`SystemConfig::capture_completions`] each record is additionally
    /// stamped with its issue→complete latency as the op finishes.
    op_capture: Option<TraceCapture>,
    /// Completed-load counter driving [`FaultInjection::CorruptLoads`].
    loads_completed: u64,
    /// Eligible-invalidation counter driving
    /// [`FaultInjection::DropInvalidations`].
    invalidations_seen: u64,
    /// Eligible-delivery counter driving
    /// [`FaultInjection::DuplicateDeliveries`].
    duplicates_seen: u64,
    /// Eligible-request counter driving
    /// [`FaultInjection::StaleSharerMask`].
    stale_masks_seen: u64,
    /// Per-destination hold-back buffers for
    /// [`FaultInjection::ReorderOrdered`] (empty unless that fault is on).
    reorder_buf: Vec<Vec<HeldDelivery>>,
    /// Bytes delivered inside the sender's cluster (hierarchy runs only).
    hier_intra_bytes: u64,
    /// Bytes delivered across a cluster boundary (hierarchy runs only).
    hier_inter_bytes: u64,
    /// Coherence requests handled per directory-spine bank (empty unless
    /// a hierarchy is configured).
    hier_bank_requests: Vec<u64>,
}

impl<W: Workload> System<W> {
    /// Builds and primes the system: every processor fetches its first work
    /// item.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn new(mut cfg: SystemConfig, mut workload: W) -> Self {
        cfg.validate();
        let nodes = cfg.nodes;
        // Everything derived from the fault plane is computed here, before
        // the configuration moves into the interconnect below.
        let unreliable = cfg
            .fault_plane
            .as_ref()
            .is_some_and(bash_net::FaultPlaneConfig::breaks_delivery);
        let fault_timer_load: usize =
            cfg.fault_plane
                .as_ref()
                .map_or(0, |fp| if fp.transport.is_some() { 8 } else { 2 });
        let mut net_cfg = NetConfig::new(nodes, cfg.link_mbps);
        net_cfg.traversal = cfg.traversal;
        net_cfg.broadcast_cost_multiplier = cfg.broadcast_cost_multiplier;
        // The interconnect is the sole consumer of the jitter and fault
        // plane, so it takes ownership instead of a per-run clone (the
        // same single-owner discipline `AdaptorConfig` gets by reference);
        // both stay reachable through `net.config()`.
        net_cfg.jitter = std::mem::replace(&mut cfg.jitter, Jitter::None);
        net_cfg.topology = cfg.topology;
        net_cfg.fault = cfg.fault_plane.take();
        let net = Interconnect::new(net_cfg);

        let mut caches: Vec<CacheCtrl> = (0..nodes)
            .map(|i| {
                CacheCtrl::new(
                    cfg.protocol,
                    NodeId(i),
                    nodes,
                    cfg.cache_geometry,
                    cfg.cache_provide_latency,
                    // One shared config for the whole system; only BASH
                    // controllers read it, none of them clone it.
                    &cfg.adaptor,
                    cfg.hierarchy,
                    cfg.coverage,
                )
            })
            .collect();
        let mut mems: Vec<MemCtrl> = (0..nodes)
            .map(|i| {
                MemCtrl::new(
                    cfg.protocol,
                    NodeId(i),
                    nodes,
                    cfg.dram_latency,
                    cfg.serialize_dram,
                    cfg.retry_capacity,
                    cfg.hierarchy,
                    cfg.coverage,
                )
            })
            .collect();

        // The broken-network faults — and an unprotected lossy fault
        // plane — deliberately violate the delivery contract the
        // controllers' asserts encode; switch the controllers to tolerant
        // (drop-and-count) mode so the breakage surfaces as an oracle
        // violation or a watchdog wedge instead of a panic.
        if cfg.fault.is_some_and(FaultInjection::breaks_network) || unreliable {
            for c in &mut caches {
                c.set_tolerant(true);
            }
            for m in &mut mems {
                m.set_tolerant(true);
            }
        }

        // Steady-state queue depth scales with the node count: every node
        // keeps a handful of protocol events in flight, and an armed fault
        // plane adds per-node timer load (retransmission RTOs under a
        // reliable transport; delayed redeliveries under plain loss).
        // Size the queue up front so warmup never reallocates it, and give
        // the calendar the event horizon — the span a message stays in
        // flight — so its wheel covers the common case with the overflow
        // level reserved for far-future timers. `RunStats::peak_queue_len`
        // reports the observed high-water mark for re-tuning this factor.
        let queue_cap = (nodes as usize * (16 + fault_timer_load)).max(64);
        let horizon = cfg.traversal + Duration::transmission(72, cfg.link_mbps);
        let mut events = EventQueue::with_kind(cfg.queue, queue_cap, horizon);
        let mut procs: Vec<Processor> = (0..nodes).map(|_| Processor::default()).collect();
        // Capture must start before priming: the first item per node is
        // pulled here, not in `fetch_next`.
        let mut op_capture = cfg
            .capture_ops
            .then(|| TraceCapture::new(nodes, cfg.seed, workload.name()));
        for i in 0..nodes {
            let node = NodeId(i);
            match workload.next_item(node, Time::ZERO) {
                Some(item) => {
                    capture_item(&mut op_capture, node, &item);
                    let at = Time::ZERO + item.think;
                    procs[i as usize].queued = Some(item);
                    events.schedule(at, Event::ProcIssue(node));
                }
                None => procs[i as usize].done = true,
            }
        }
        if cfg.protocol == ProtocolKind::Bash {
            let interval = Duration::from_cycles(cfg.adaptor.sampling_interval_cycles);
            events.schedule(Time::ZERO + interval, Event::Sample);
        }

        let local_deltas = match &net {
            Interconnect::Fabric(f) => (0..nodes)
                .map(|i| {
                    (0..f.incident_links(NodeId(i)).len())
                        .map(|_| WindowDelta::new())
                        .collect()
                })
                .collect(),
            Interconnect::Crossbar(_) => Vec::new(),
        };

        System {
            window_deltas: (0..nodes).map(|_| WindowDelta::new()).collect(),
            local_deltas,
            net,
            caches,
            mems,
            procs,
            workload,
            events,
            arena: MsgArena::with_capacity((nodes as usize * 4).max(16)),
            now: Time::ZERO,
            sink: ActionSink::with_capacity(16),
            net_step: NetStep::new(),
            counters: Counters::default(),
            miss_latency: RunningStat::new(),
            measuring: false,
            measure_start: Snapshot::default(),
            policy_trace: None,
            delivery_trace: None,
            op_capture,
            loads_completed: 0,
            invalidations_seen: 0,
            duplicates_seen: 0,
            stale_masks_seen: 0,
            reorder_buf: (0..nodes).map(|_| Vec::new()).collect(),
            hier_intra_bytes: 0,
            hier_inter_bytes: 0,
            hier_bank_requests: cfg
                .hierarchy
                .map(|h| vec![0; h.banks as usize])
                .unwrap_or_default(),
            cfg,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The workload (for domain metrics like lock acquires).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Mutable workload access (verification harnesses drain recorded
    /// observations out of their workload wrappers after a run).
    pub fn workload_mut(&mut self) -> &mut W {
        &mut self.workload
    }

    /// The cache controllers (tester invariant checks).
    pub fn caches(&self) -> &[CacheCtrl] {
        &self.caches
    }

    /// The memory controllers (tester invariant checks).
    pub fn mems(&self) -> &[MemCtrl] {
        &self.mems
    }

    /// Enables recording of the mean policy-counter value over time
    /// (sampled at every adaptive tick; see the `adaptive_phases` example).
    pub fn enable_policy_trace(&mut self) {
        self.policy_trace = Some(Vec::new());
    }

    /// The recorded policy trace, if enabled.
    pub fn policy_trace(&self) -> Option<&[(Time, f64)]> {
        self.policy_trace.as_deref()
    }

    /// Enables recording a human-readable line per message delivery (used
    /// by the Figure 4 protocol walkthroughs).
    pub fn enable_delivery_trace(&mut self) {
        self.delivery_trace = Some(Vec::new());
    }

    /// The recorded delivery trace, if enabled.
    pub fn delivery_trace(&self) -> Option<&[String]> {
        self.delivery_trace.as_deref()
    }

    /// Finalizes and takes the captured reference trace, or `None` when
    /// capture was not enabled. The trace header carries the run's node
    /// count, seed and workload name, so replaying it through
    /// `TraceWorkload` reproduces this run exactly (same config, any
    /// thread count).
    pub fn take_captured_trace(&mut self) -> Option<Trace> {
        let mut writer = self.op_capture.take()?;
        // The workload may refine its display name as it runs; stamp the
        // final one so replay reports stay name-identical.
        writer.set_workload(self.workload.name());
        Some(writer.finish())
    }

    /// Advances simulation until `t` (events at exactly `t` included).
    ///
    /// The loop is batched by timestamp: the outer iteration advances the
    /// clock once, the inner one drains every event at that instant
    /// (including any it schedules for the same instant) — one clock
    /// update and one queue probe per batch instead of per event.
    pub fn run_until(&mut self, t: Time) {
        while let Some(ts) = self.events.peek_time() {
            if ts > t {
                break;
            }
            self.now = ts;
            while let Some(ev) = self.events.pop_at(ts) {
                self.dispatch(ev);
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Drains every pending event (workloads must eventually return `None`
    /// or this will not terminate). Used by the random tester to reach
    /// global quiescence.
    pub fn run_to_idle(&mut self) {
        loop {
            while let Some(ts) = self.events.peek_time() {
                self.now = ts;
                while let Some(ev) = self.events.pop_at(ts) {
                    self.dispatch(ev);
                }
            }
            // Under ReorderOrdered a partial window can be parked in the
            // per-node hold-back buffers with no event left to release it;
            // flush and keep draining until both are empty.
            if !self.flush_reordered() {
                break;
            }
        }
    }

    /// Checks the configured watchdog budgets against the next event's
    /// time; returns the tripped cause, if any.
    fn watchdog_tripped(&self, next: Time) -> Option<WedgeCause> {
        let WatchdogBudget {
            max_events,
            max_virtual_time,
        } = self.cfg.watchdog?;
        if let Some(limit) = max_events {
            if self.events.events_processed() >= limit {
                return Some(WedgeCause::EventBudget { limit });
            }
        }
        if let Some(limit) = max_virtual_time {
            if next > Time::ZERO + limit {
                return Some(WedgeCause::TimeBudget { limit });
            }
        }
        None
    }

    /// Builds the structured wedge diagnostic for the current state.
    fn wedged(&self, cause: WedgeCause) -> RunError {
        fn stuck(it: impl Iterator<Item = bool>) -> Vec<u16> {
            it.enumerate()
                .filter(|&(_, busy)| busy)
                .map(|(i, _)| i as u16)
                .collect()
        }
        RunError::Wedged(Box::new(WedgeDiagnostic {
            cause,
            at: self.now,
            events_processed: self.events.events_processed(),
            queue_len: self.events.len(),
            pending_nodes: stuck(self.procs.iter().map(|p| p.pending.is_some())),
            busy_caches: stuck(self.caches.iter().map(|c| !c.is_quiescent())),
            busy_mems: stuck(self.mems.iter().map(|m| !m.is_quiescent())),
            fault: self.net.fault_stats(),
        }))
    }

    /// Watchdog-guarded [`Self::run_to_idle`]: drains every pending event,
    /// converting any wedge — a budget overrun, or a drained queue that
    /// never reached quiescence — into a structured [`RunError::Wedged`]
    /// diagnostic instead of hanging or silently stopping short.
    pub fn try_run_to_idle(&mut self) -> Result<(), RunError> {
        loop {
            // Unlike the unguarded run loops, this path stays per-event:
            // the watchdog must be consulted against every next pending
            // event, or a same-instant event storm could spin inside a
            // timestamp batch with no budget check ever firing.
            while let Some(next) = self.events.peek_time() {
                if let Some(cause) = self.watchdog_tripped(next) {
                    return Err(self.wedged(cause));
                }
                let (now, ev) = self.events.pop().expect("peeked");
                self.now = now;
                self.dispatch(ev);
            }
            if !self.flush_reordered() {
                break;
            }
        }
        if self.is_quiescent() {
            Ok(())
        } else {
            Err(self.wedged(WedgeCause::Stalled))
        }
    }

    /// Watchdog-guarded [`Self::run_until`]: advances simulation to `t`
    /// unless a watchdog budget trips first.
    ///
    /// Like [`Self::try_run_to_idle`], a drained event queue that left
    /// the system non-quiescent is reported as a [`WedgeCause::Stalled`]
    /// wedge (even with no watchdog armed): nothing can ever happen
    /// again, so coasting to `t` would silently measure a dead system —
    /// the failure mode of unprotected message loss, which produces
    /// *fewer* events, not more, and so never trips an event budget.
    pub fn try_run_until(&mut self, t: Time) -> Result<(), RunError> {
        loop {
            // Per-event like `try_run_to_idle`, and for the same reason.
            while let Some(pt) = self.events.peek_time() {
                if pt > t {
                    if t > self.now {
                        self.now = t;
                    }
                    return Ok(());
                }
                if let Some(cause) = self.watchdog_tripped(pt) {
                    return Err(self.wedged(cause));
                }
                let (now, ev) = self.events.pop().expect("peeked");
                self.now = now;
                self.dispatch(ev);
            }
            if !self.flush_reordered() {
                break;
            }
        }
        // The queue drained before `t`: a finite workload that completed
        // is quiescent and just stops early; anything else is wedged.
        if !self.is_quiescent() {
            return Err(self.wedged(WedgeCause::Stalled));
        }
        if t > self.now {
            self.now = t;
        }
        Ok(())
    }

    /// Releases every delivery still held in the reorder buffers, newest
    /// first (same release order as a full window). Returns true when
    /// anything was released.
    fn flush_reordered(&mut self) -> bool {
        let mut any = false;
        for i in 0..self.reorder_buf.len() {
            while let Some((msg, order)) = self.reorder_buf[i].pop() {
                any = true;
                self.deliver_now(NodeId(i as u16), msg, order);
            }
        }
        any
    }

    /// The delivery-ordering capability of the configured interconnect:
    /// the crossbar and single-hop star order natively; multi-hop fabric
    /// topologies re-sequence ordered messages at the endpoints.
    pub fn ordering(&self) -> OrderingMode {
        self.net.ordering()
    }

    /// True when every controller has no transaction in flight.
    pub fn is_quiescent(&self) -> bool {
        self.procs.iter().all(|p| p.pending.is_none())
            && self.caches.iter().all(|c| c.is_quiescent())
            && self.mems.iter().all(|m| m.is_quiescent())
    }

    /// Starts the measurement window: snapshots all counters and resets the
    /// latency statistics.
    pub fn begin_measurement(&mut self) {
        self.measuring = true;
        self.miss_latency = RunningStat::new();
        self.measure_start = self.snapshot();
    }

    /// Runs until `t_end` and returns the measured-window statistics.
    pub fn finish(&mut self, t_end: Time) -> RunStats {
        self.run_until(t_end);
        self.collect_stats()
    }

    /// Watchdog-guarded [`Self::finish`]: runs until `t_end` and reports,
    /// unless a watchdog budget trips first.
    pub fn try_finish(&mut self, t_end: Time) -> Result<RunStats, RunError> {
        self.try_run_until(t_end)?;
        Ok(self.collect_stats())
    }

    /// Closes the measurement window and computes the window deltas.
    fn collect_stats(&mut self) -> RunStats {
        assert!(self.measuring, "begin_measurement was not called");
        let end = self.snapshot();
        let start = &self.measure_start;
        let window = end.at.since(start.at);
        // Utilization normalizes over the contended resources: the
        // crossbar's per-node endpoint links, or the fabric's directed
        // links (same arithmetic, so crossbar reports are unchanged).
        let nodes = match &self.net {
            Interconnect::Crossbar(_) => self.cfg.nodes as u64,
            Interconnect::Fabric(f) => f.link_count() as u64,
        };
        let busy = end.link_busy_ps - start.link_busy_ps;
        let util = if window.is_zero() {
            0.0
        } else {
            busy as f64 / (window.as_ps() as f64 * nodes as f64)
        };
        let links = match &self.net {
            Interconnect::Crossbar(_) => Vec::new(),
            Interconnect::Fabric(f) => end
                .per_link
                .iter()
                .enumerate()
                .map(|(i, &(busy_ps, bytes, messages))| {
                    let (s_busy, s_bytes, s_msgs) =
                        start.per_link.get(i).copied().unwrap_or((0, 0, 0));
                    let (from, to) = f.link_endpoints(i);
                    LinkStat {
                        from,
                        to,
                        bytes: bytes - s_bytes,
                        messages: messages - s_msgs,
                        peak_demand: f.link_peak_demand(i),
                        busy_fraction: if window.is_zero() {
                            0.0
                        } else {
                            (busy_ps - s_busy) as f64 / window.as_ps() as f64
                        },
                    }
                })
                .collect(),
        };
        RunStats {
            protocol: self.cfg.protocol.name(),
            workload: self.workload.name().to_string(),
            duration: window,
            ops_completed: end.counters.ops - start.counters.ops,
            retired_instructions: end.counters.retired - start.counters.retired,
            misses: end.cache.misses - start.cache.misses,
            hits: end.cache.hits - start.cache.hits,
            sharing_misses: end.cache.sharing_misses - start.cache.sharing_misses,
            avg_miss_latency_ns: self.miss_latency.mean(),
            stddev_miss_latency_ns: self.miss_latency.stddev(),
            max_miss_latency_ns: self.miss_latency.max().unwrap_or(0.0),
            link_utilization: util,
            link_bytes: end.link_bytes - start.link_bytes,
            broadcasts: end.cache.broadcasts_sent - start.cache.broadcasts_sent,
            unicasts: end.cache.unicasts_sent - start.cache.unicasts_sent,
            writebacks: end.cache.writebacks - start.cache.writebacks,
            retries: end.mem.retries_sent - start.mem.retries_sent,
            broadcast_escalations: end.mem.broadcast_escalations - start.mem.broadcast_escalations,
            nacks: end.mem.nacks_sent - start.mem.nacks_sent,
            events_processed: end.events - start.events,
            peak_queue_len: self.events.peak_len() as u64,
            links,
            fault: self.net.fault_stats(),
            hierarchy: self.cfg.hierarchy.map(|h| HierarchyStats {
                clusters: h.clusters(self.cfg.nodes),
                banks: h.banks,
                intra_cluster_bytes: end.hier_bytes.0 - start.hier_bytes.0,
                inter_cluster_bytes: end.hier_bytes.1 - start.hier_bytes.1,
                bank_requests: end
                    .hier_banks
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b - start.hier_banks.get(i).copied().unwrap_or(0))
                    .collect(),
            }),
        }
    }

    /// Convenience: build, warm up, measure, report.
    pub fn run(cfg: SystemConfig, workload: W, warmup: Duration, measure: Duration) -> RunStats {
        let mut sys = System::new(cfg, workload);
        sys.run_until(Time::ZERO + warmup);
        sys.begin_measurement();
        sys.finish(Time::ZERO + warmup + measure)
    }

    fn snapshot(&self) -> Snapshot {
        let mut cache = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.sharing_misses += s.sharing_misses;
            cache.writebacks += s.writebacks;
            cache.writebacks_squashed += s.writebacks_squashed;
            cache.broadcasts_sent += s.broadcasts_sent;
            cache.unicasts_sent += s.unicasts_sent;
            cache.nacks_received += s.nacks_received;
            cache.nack_reissues += s.nack_reissues;
            cache.snoop_responses += s.snoop_responses;
        }
        let mut mem = MemStats::default();
        for m in &self.mems {
            let s = m.stats();
            mem.data_responses += s.data_responses;
            mem.forwards += s.forwards;
            mem.retries_sent += s.retries_sent;
            mem.broadcast_escalations += s.broadcast_escalations;
            mem.nacks_sent += s.nacks_sent;
            mem.writebacks_accepted += s.writebacks_accepted;
            mem.writebacks_stale += s.writebacks_stale;
        }
        let mut busy = 0u64;
        let mut bytes = 0u64;
        let mut per_link = Vec::new();
        match &self.net {
            Interconnect::Crossbar(xb) => {
                for i in 0..self.cfg.nodes {
                    let node = NodeId(i);
                    busy += xb.link_tracker(node).busy_time_until(self.now).as_ps();
                    bytes += xb.link_bytes(node);
                }
            }
            Interconnect::Fabric(f) => {
                per_link.reserve(f.link_count());
                for i in 0..f.link_count() {
                    let b = f.link_tracker(i).busy_time_until(self.now).as_ps();
                    busy += b;
                    bytes += f.link_bytes(i);
                    per_link.push((b, f.link_bytes(i), f.link_messages(i)));
                }
            }
        }
        Snapshot {
            at: self.now,
            counters: self.counters,
            cache,
            mem,
            link_busy_ps: busy,
            link_bytes: bytes,
            per_link,
            events: self.events.events_processed(),
            hier_bytes: (self.hier_intra_bytes, self.hier_inter_bytes),
            hier_banks: self.hier_bank_requests.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Inject(msg) => {
                // The step buffer is taken out of `self` for the duration of
                // the call (borrow discipline) and put back afterwards, so
                // its capacity is reused by every event.
                let mut step = std::mem::take(&mut self.net_step);
                self.net.send(self.now, msg, &mut self.arena, &mut step);
                self.absorb_net(&mut step);
                self.net_step = step;
            }
            Event::Net(ne) => {
                let mut step = std::mem::take(&mut self.net_step);
                self.net.handle(self.now, ne, &mut self.arena, &mut step);
                self.absorb_net(&mut step);
                self.net_step = step;
            }
            Event::ProcIssue(node) => self.proc_issue(node),
            Event::Sample => self.sample(),
            Event::Redeliver { dst, msg, order } => self.redeliver(dst, msg, order),
        }
    }

    fn absorb_net(&mut self, step: &mut NetStep<ProtoMsg>) {
        for (t, e) in step.schedule.drain(..) {
            self.events.schedule(t, Event::Net(e));
        }
        for d in step.deliveries.drain(..) {
            self.deliver(d.dst, d.msg, d.order);
        }
    }

    /// True when this delivery is an invalidation the configured
    /// [`FaultInjection::DropInvalidations`] fault elects to lose: a GetM
    /// reaching a bystander cache that holds the block as a pure sharer.
    /// Owners are never targeted — they must still supply data, so the
    /// fault produces stale values, not deadlock.
    fn fault_drops_invalidation(&mut self, dst: NodeId, msg: &Message<ProtoMsg>) -> bool {
        let Some(FaultInjection::DropInvalidations { period }) = self.cfg.fault else {
            return false;
        };
        let ProtoMsg::Request(req) = &msg.payload else {
            return false;
        };
        if req.kind != TxnKind::GetM || req.requestor == dst {
            return false;
        }
        if self.caches[dst.index()].cache().state(req.block) != Some(Mosi::S) {
            return false;
        }
        self.invalidations_seen += 1;
        self.invalidations_seen.is_multiple_of(period)
    }

    /// True when this memory-bound delivery is one the configured
    /// [`FaultInjection::DuplicateDeliveries`] fault elects to replay: a
    /// GetM arriving at its home memory controller, the
    /// ownership-transfer point all three protocols share.
    fn fault_duplicates_delivery(&mut self, msg: &Message<ProtoMsg>) -> bool {
        let Some(FaultInjection::DuplicateDeliveries { period }) = self.cfg.fault else {
            return false;
        };
        let ProtoMsg::Request(req) = &msg.payload else {
            return false;
        };
        if req.kind != TxnKind::GetM {
            return false;
        }
        self.duplicates_seen += 1;
        self.duplicates_seen.is_multiple_of(period)
    }

    /// True when this memory-bound delivery is one the configured
    /// [`FaultInjection::StaleSharerMask`] fault elects to corrupt: a
    /// GetS/GetM reaching its home memory controller. After the home has
    /// processed it (and recorded the requestor), its record of the
    /// requestor is silently erased.
    fn fault_forgets_sharer(&mut self, msg: &Message<ProtoMsg>) -> bool {
        let Some(FaultInjection::StaleSharerMask { period }) = self.cfg.fault else {
            return false;
        };
        let ProtoMsg::Request(req) = &msg.payload else {
            return false;
        };
        if !matches!(req.kind, TxnKind::GetS | TxnKind::GetM) {
            return false;
        }
        self.stale_masks_seen += 1;
        self.stale_masks_seen.is_multiple_of(period)
    }

    /// Delivers the fault-injected second copy of a duplicated message to
    /// `dst`'s memory controller. Gated on the home's ownership record:
    /// the duplicate fires only when *another* cache has become the owner
    /// since the original, so the home re-runs an ownership transfer that
    /// corrupts the record out from under the real owner. (A duplicate the
    /// home would treat as idempotent proves nothing about the oracle.)
    fn redeliver(&mut self, dst: NodeId, msg: MsgRef, order: Option<u64>) {
        // The message is moved out of the arena for the duration of the
        // call (the controllers need `&mut self` alongside `&Message`),
        // put back, and the reference retained at schedule time released.
        let m = self.arena.take(msg);
        self.redeliver_msg(dst, &m, order);
        self.arena.put_back(msg, m);
        self.arena.release(msg);
    }

    fn redeliver_msg(&mut self, dst: NodeId, msg: &Message<ProtoMsg>, order: Option<u64>) {
        let ProtoMsg::Request(req) = &msg.payload else {
            return;
        };
        let Owner::Node(owner) = self.mems[dst.index()].owner_record(req.block) else {
            return;
        };
        if owner == req.requestor {
            return;
        }
        // Memory controller only — a real duplicating network would hit
        // the caches too, but the home's directory state is where the
        // duplicate provably corrupts the protocol.
        let mut sink = std::mem::take(&mut self.sink);
        self.mems[dst.index()].on_delivery(self.now, msg, order, &mut sink);
        self.apply_actions(dst, &mut sink);
        self.sink = sink;
    }

    fn deliver(&mut self, dst: NodeId, msg: MsgRef, order: Option<u64>) {
        // ReorderOrdered: hold totally ordered deliveries back per node and
        // release each full window in reverse — every node still sees every
        // ordered message exactly once, but no longer in the global order
        // its peers observe. Unordered traffic (data, nacks) is untouched.
        // A held-back delivery parks its arena reference with the handle.
        if let Some(FaultInjection::ReorderOrdered { window }) = self.cfg.fault {
            if self.arena.get(msg).ordered != Ordered::None {
                self.reorder_buf[dst.index()].push((msg, order));
                if self.reorder_buf[dst.index()].len() as u64 >= window {
                    while let Some((m, o)) = self.reorder_buf[dst.index()].pop() {
                        self.deliver_now(dst, m, o);
                    }
                }
                return;
            }
        }
        self.deliver_now(dst, msg, order);
    }

    /// Consumes one delivery: runs the controllers against the message and
    /// releases the arena reference the delivery transferred to the driver.
    fn deliver_now(&mut self, dst: NodeId, msg: MsgRef, order: Option<u64>) {
        let m = self.arena.take(msg);
        self.deliver_msg(dst, msg, &m, order);
        self.arena.put_back(msg, m);
        self.arena.release(msg);
    }

    fn deliver_msg(
        &mut self,
        dst: NodeId,
        mref: MsgRef,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
    ) {
        if let Some(trace) = self.delivery_trace.as_mut() {
            let ord = order.map(|o| format!(" ord={o}")).unwrap_or_default();
            trace.push(format!(
                "{:>9} {} -> {} {:?} dests={}{}",
                self.now.to_string(),
                msg.src,
                dst,
                msg.payload,
                msg.dests,
                ord
            ));
        }
        let routing = route(
            self.cfg.protocol,
            dst,
            self.cfg.nodes,
            self.cfg.hierarchy.as_ref(),
            msg,
        );
        if let Some(h) = &self.cfg.hierarchy {
            if h.same_cluster(msg.src, dst) {
                self.hier_intra_bytes += u64::from(msg.size);
            } else {
                self.hier_inter_bytes += u64::from(msg.size);
            }
            if routing.to_mem {
                if let ProtoMsg::Request(req) = &msg.payload {
                    self.hier_bank_requests[h.bank_of(req.block) as usize] += 1;
                }
            }
        }
        if routing.to_mem && self.fault_duplicates_delivery(msg) {
            // Schedule the duplicate well after the original transaction
            // settles — far enough out that ownership of the block has had
            // time to migrate to another cache (`redeliver` re-checks the
            // ownership record then; a same-owner duplicate is idempotent
            // and proves nothing). The duplicate keeps the message alive
            // past this delivery, so it retains a reference.
            self.arena.retain(mref);
            self.events.schedule(
                self.now + Duration::from_ns(20_000),
                Event::Redeliver {
                    dst,
                    msg: mref,
                    order,
                },
            );
        }
        if routing.to_cache && self.fault_drops_invalidation(dst, msg) {
            // The cache never sees the invalidation; its stale copy keeps
            // serving loads. Memory-side routing proceeds untouched.
        } else if routing.to_cache {
            let mut sink = std::mem::take(&mut self.sink);
            self.caches[dst.index()].on_delivery(self.now, msg, order, &mut sink);
            self.apply_actions(dst, &mut sink);
            self.sink = sink;
        }
        if routing.to_mem {
            let mut sink = std::mem::take(&mut self.sink);
            self.mems[dst.index()].on_delivery(self.now, msg, order, &mut sink);
            self.apply_actions(dst, &mut sink);
            self.sink = sink;
            if self.fault_forgets_sharer(msg) {
                if let ProtoMsg::Request(req) = &msg.payload {
                    // The home just recorded the requestor; silently lose
                    // it again (sharer bit and, if recorded, ownership).
                    self.mems[dst.index()].fault_forget_sharer(req.block, req.requestor);
                }
            }
        }
    }

    fn apply_actions(&mut self, node: NodeId, sink: &mut ActionSink) {
        for act in sink.drain() {
            match act {
                Action::SendAfter { delay, msg } => {
                    self.events.schedule(self.now + delay, Event::Inject(msg));
                }
                Action::MissDone { txn, value, .. } => self.miss_done(node, txn, value),
            }
        }
    }

    fn proc_issue(&mut self, node: NodeId) {
        let idx = node.index();
        let item = self.procs[idx].queued.take().expect("issue without item");
        let mut sink = std::mem::take(&mut self.sink);
        let outcome = self.caches[idx].access(self.now, item.op, &mut sink);
        match outcome {
            AccessOutcome::Hit { value } => {
                self.counters.ops += 1;
                self.counters.retired += item.instructions;
                // A hit completes at issue time in this model: the
                // completion event records a zero latency.
                self.capture_completion(node, Duration::ZERO);
                self.complete_op(node, &item.op, value);
                self.fetch_next(node);
            }
            AccessOutcome::Miss { txn } => {
                self.procs[idx].pending = Some(PendingMiss {
                    op: item.op,
                    instructions: item.instructions,
                    issued_at: self.now,
                    txn,
                });
            }
        }
        self.apply_actions(node, &mut sink);
        self.sink = sink;
    }

    fn miss_done(&mut self, node: NodeId, txn: TxnId, value: u64) {
        let idx = node.index();
        let pending = self.procs[idx]
            .pending
            .take()
            .expect("miss completion without pending miss");
        assert_eq!(pending.txn, txn, "completion for the wrong transaction");
        if self.measuring {
            self.miss_latency
                .push(self.now.since(pending.issued_at).as_ps() as f64 / 1000.0);
        }
        self.counters.ops += 1;
        self.counters.retired += pending.instructions;
        self.capture_completion(node, self.now.since(pending.issued_at));
        self.complete_op(node, &pending.op, value);
        self.fetch_next(node);
    }

    /// Stamps the in-flight op's issue→complete latency onto its captured
    /// record, when completion capture is enabled.
    fn capture_completion(&mut self, node: NodeId, latency: Duration) {
        if !self.cfg.capture_completions {
            return;
        }
        if let Some(capture) = &mut self.op_capture {
            capture.record_completion(node, latency);
        }
    }

    /// Reports a completed op to the workload, applying any configured
    /// fault injection to the observed value first.
    fn complete_op(&mut self, node: NodeId, op: &ProcOp, value: u64) {
        let mut value = value;
        if let (Some(FaultInjection::CorruptLoads { period }), ProcOp::Load { .. }) =
            (self.cfg.fault, op)
        {
            self.loads_completed += 1;
            if self.loads_completed.is_multiple_of(period) {
                // Set the top bit: far outside any oracle token range, so
                // the corruption is unambiguously out-of-thin-air.
                value ^= 1 << 63;
            }
        }
        self.workload.on_complete(node, self.now, op, value);
    }

    fn fetch_next(&mut self, node: NodeId) {
        let idx = node.index();
        match self.workload.next_item(node, self.now) {
            Some(item) => {
                capture_item(&mut self.op_capture, node, &item);
                let at = self.now + item.think;
                self.procs[idx].queued = Some(item);
                self.events.schedule(at, Event::ProcIssue(node));
            }
            None => self.procs[idx].done = true,
        }
    }

    fn sample(&mut self) {
        let interval = Duration::from_cycles(self.cfg.adaptor.sampling_interval_cycles);
        // First pass: one `(endpoint busy estimate, local peak)` input per
        // node. The window trackers must advance for every node each tick
        // regardless of how the inputs are consumed below.
        let n = self.cfg.nodes as usize;
        let mut inputs: Vec<(u64, u64)> = Vec::with_capacity(n);
        for i in 0..self.cfg.nodes {
            let node = NodeId(i);
            match &self.net {
                Interconnect::Crossbar(xb) => {
                    let busy =
                        self.window_deltas[node.index()].advance(xb.link_tracker(node), self.now);
                    // Under latency jitter a transmission can be credited
                    // across a window boundary (up to jitter_max of slop);
                    // clamp — boundary slop is measurement noise, exactly
                    // as in real sampling hardware.
                    let busy_ps = busy.as_ps().min(interval.as_ps());
                    inputs.push((busy_ps, busy_ps));
                }
                Interconnect::Fabric(f) => {
                    // Endpoint estimate: mean busy time over the node's
                    // incident directed links; local input: their peak
                    // (consumed only when the adaptor enables it).
                    let links = f.incident_links(node);
                    let deltas = &mut self.local_deltas[node.index()];
                    let mut sum = 0u64;
                    let mut peak = 0u64;
                    for (k, &li) in links.iter().enumerate() {
                        let busy = deltas[k].advance(f.link_tracker(li as usize), self.now);
                        let busy_ps = busy.as_ps().min(interval.as_ps());
                        sum += busy_ps;
                        peak = peak.max(busy_ps);
                    }
                    let mean = if links.is_empty() {
                        0
                    } else {
                        sum / links.len() as u64
                    };
                    inputs.push((mean, peak));
                }
            }
        }
        // Under a hierarchy the adaptive mechanism runs per *cluster*:
        // every member samples the cluster-mean utilization (and
        // cluster-peak local input), so a whole cluster flips its cast
        // policy together — the cluster is the broadcast domain, so the
        // bandwidth being protected is the cluster's, not one node's.
        if let Some(h) = &self.cfg.hierarchy {
            let cs = h.cluster_size as usize;
            for first in (0..n).step_by(cs) {
                let members = &inputs[first..first + cs];
                let mean = members.iter().map(|&(b, _)| b).sum::<u64>() / cs as u64;
                let peak = members.iter().map(|&(_, p)| p).max().unwrap_or(0);
                for input in &mut inputs[first..first + cs] {
                    *input = (mean, peak);
                }
            }
        }
        // Second pass: feed every adaptor its input.
        let fabric = matches!(&self.net, Interconnect::Fabric(_));
        let mut policy_sum = 0.0;
        let mut policy_n = 0u32;
        for (i, &(busy, peak)) in inputs.iter().enumerate() {
            if let Some(adaptor) = self.caches[i].adaptor_mut() {
                if fabric {
                    adaptor.sample_window_local(busy, peak, interval.as_ps());
                } else {
                    adaptor.sample_window(busy, interval.as_ps());
                }
                policy_sum += adaptor.policy_value() as f64;
                policy_n += 1;
            }
        }
        if let Some(trace) = self.policy_trace.as_mut() {
            if policy_n > 0 {
                trace.push((self.now, policy_sum / policy_n as f64));
            }
        }
        // Stop the sampling chain once nothing else is in flight, so
        // `run_to_idle` terminates. (Not "once every processor is done":
        // an empty queue already implies that in a fault-free run, and
        // under a broken-network fault a processor can wedge forever on a
        // miss that will never complete — the sampler must not keep the
        // system alive; the harness reports the quiescence failure.)
        let finished = self.events.is_empty();
        if !finished {
            self.events.schedule(self.now + interval, Event::Sample);
        }
    }

    /// The mean unicast probability across all BASH adaptors (0 when not
    /// running BASH).
    pub fn mean_unicast_probability(&mut self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for c in self.caches.iter_mut() {
            if let Some(a) = c.adaptor_mut() {
                sum += a.unicast_probability();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}
