//! Emits `BENCH_engine.json`: the repo's engine-performance baseline.
//!
//! Two numbers anchor the perf trajectory:
//!
//! * **events/sec** — single-threaded simulated-event throughput of a fixed
//!   end-to-end run, one value per protocol (the zero-allocation hot path's
//!   metric);
//! * **sweep wall time** — the same (bandwidth × seed) grid executed with
//!   `.threads(1)` and with the default thread pool (the parallel sweep
//!   executor's metric), plus the resulting speedup.
//!
//! Usage: `engine_baseline [OUTPUT.json]` (default `BENCH_engine.json`).
//! Run it through `scripts/bench_baseline.sh` for a release build.

use std::time::Instant;

use bash::{Duration, ProtocolKind, SimBuilder, System, SystemConfig};
use bash_coherence::CacheGeometry;
use bash_kernel::pool;
use bash_workloads::LockingMicrobench;

/// One fixed end-to-end run; returns (events processed, wall seconds).
fn timed_run(proto: ProtocolKind) -> (u64, f64) {
    let cfg = SystemConfig::paper_default(proto, 16, 1600)
        .with_cache(CacheGeometry { sets: 256, ways: 4 });
    let wl = LockingMicrobench::new(16, 256, Duration::ZERO, 1);
    let t0 = Instant::now();
    let stats = System::run(
        cfg,
        wl,
        Duration::from_ns(10_000),
        Duration::from_ns(200_000),
    );
    (stats.events_processed, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` events/sec for one protocol.
fn events_per_sec(proto: ProtocolKind, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let (events, secs) = timed_run(proto);
            events as f64 / secs.max(1e-9)
        })
        .fold(0.0, f64::max)
}

const SWEEP_BANDWIDTHS: [u64; 7] = [200, 400, 800, 1600, 3200, 6400, 12800];
const SWEEP_SEEDS: u32 = 4;

/// Wall seconds for the fixed sweep grid at the given thread count.
fn sweep(threads: usize) -> f64 {
    let t0 = Instant::now();
    let reports = SimBuilder::new(ProtocolKind::Bash)
        .nodes(8)
        .bandwidths(SWEEP_BANDWIDTHS)
        .seeds(SWEEP_SEEDS)
        .locking_microbench(128, Duration::ZERO)
        .warmup_ns(10_000)
        .measure_ns(100_000)
        .threads(threads)
        .run_sweep();
    assert_eq!(reports.len(), SWEEP_BANDWIDTHS.len());
    t0.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    eprintln!("measuring single-threaded events/sec (3 reps per protocol)...");
    let mut proto_lines = Vec::new();
    for proto in ProtocolKind::ALL {
        let eps = events_per_sec(proto, 3);
        eprintln!("  {:9} {:>12.0} events/s", proto.name(), eps);
        proto_lines.push(format!("    \"{}\": {:.0}", proto.name(), eps));
    }

    let grid_points = SWEEP_BANDWIDTHS.len() as u32 * SWEEP_SEEDS;
    eprintln!(
        "measuring sweep wall time ({} bandwidths x {} seeds)...",
        SWEEP_BANDWIDTHS.len(),
        SWEEP_SEEDS
    );
    let serial_s = sweep(1);
    let parallel_s = sweep(0);
    let threads = pool::available_threads();
    eprintln!(
        "  serial {serial_s:.3}s, parallel {parallel_s:.3}s on {threads} threads ({:.2}x)",
        serial_s / parallel_s.max(1e-9)
    );

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"events_per_sec\": {{\n{}\n  }},\n  \"sweep\": {{\n    \"grid_points\": {},\n    \"available_threads\": {},\n    \"wall_s_threads1\": {:.4},\n    \"wall_s_parallel\": {:.4},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        proto_lines.join(",\n"),
        grid_points,
        threads,
        serial_s,
        parallel_s,
        serial_s / parallel_s.max(1e-9),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
    print!("{json}");
}
