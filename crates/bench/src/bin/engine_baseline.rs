//! Emits `BENCH_engine.json`: the repo's engine-performance baseline.
//!
//! Four numbers anchor the perf trajectory:
//!
//! * **events/sec** — single-threaded simulated-event throughput of a fixed
//!   end-to-end run, one value per protocol (the zero-allocation hot path's
//!   metric);
//! * **sweep wall time** — the same (bandwidth × seed) grid executed with
//!   `.threads(1)` and with the default thread pool (the parallel sweep
//!   executor's metric), plus the resulting speedup. On a single-core host
//!   the parallel point is skipped and annotated instead of being reported
//!   as a meaningless ~1.0x "speedup";
//! * **calendar vs heap** — the calendar event queue against the binary
//!   heap it replaced: a raw queue-churn point at 256-node load
//!   (`calendar_vs_heap_256`, PR 8's headline scaling win) plus
//!   end-to-end ratios on the existing 16-node points (which must not
//!   regress);
//! * **scale** — the adaptive-sharer-set / open-addressed-block-table
//!   gate: end-to-end hierarchical events/sec at 256, 1024, and 4096
//!   nodes (sizes the old fixed 256-node bitset could not even build
//!   past), plus `smallset_vs_bitset_16` — the new `NodeSet` against the
//!   retired fixed-width bitset on a 16-node working pattern, which must
//!   hold >= 0.95x so scaling up never taxes the paper-sized runs.
//!
//! Usage: `engine_baseline [OUTPUT.json]` (default `BENCH_engine.json`).
//! Run it through `scripts/bench_baseline.sh` for a release build.

use std::time::Instant;

use bash::{
    Duration, HierarchyConfig, ProtocolKind, QueueKind, SimBuilder, System, SystemConfig, Time,
};
use bash_coherence::CacheGeometry;
use bash_kernel::{pool, EventQueue};
use bash_net::ids::ReferenceBitSet;
use bash_net::{NodeId, NodeSet};
use bash_workloads::LockingMicrobench;

/// One fixed end-to-end run; returns (events processed, wall seconds).
fn timed_run(proto: ProtocolKind, queue: QueueKind) -> (u64, f64) {
    let cfg = SystemConfig::paper_default(proto, 16, 1600)
        .with_cache(CacheGeometry { sets: 256, ways: 4 })
        .with_queue(queue);
    let wl = LockingMicrobench::new(16, 256, Duration::ZERO, 1);
    let t0 = Instant::now();
    let stats = System::run(
        cfg,
        wl,
        Duration::from_ns(10_000),
        Duration::from_ns(200_000),
    );
    (stats.events_processed, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` events/sec for one protocol.
fn events_per_sec(proto: ProtocolKind, queue: QueueKind, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let (events, secs) = timed_run(proto, queue);
            events as f64 / secs.max(1e-9)
        })
        .fold(0.0, f64::max)
}

/// Queue ops/sec under the hold-model churn a 256-node *snooping* system
/// generates: every node has a broadcast in flight, so one delivery event
/// per (source, destination) pair is pending — 256 × 256 live events,
/// each pop rescheduling a successor a short transmission-time ahead,
/// with same-instant bursts from the fan-outs. At this population the
/// heap's sift path walks ~16 scattered cache lines per op while the
/// calendar stays on its cursor bucket; this isolates the data structure
/// — the 16-node end-to-end ratios below measure it diluted by protocol
/// work.
fn queue_churn_ops_per_sec(queue: QueueKind, reps: usize) -> f64 {
    const NODES: u64 = 256;
    const PER_NODE: u64 = 256;
    const CHURN: u64 = 2_000_000;
    let run = || {
        let live = NODES * PER_NODE;
        let mut q: EventQueue<u64> =
            EventQueue::with_kind(queue, live as usize, Duration::from_ns(4096));
        for i in 0..live {
            // Fan-out bursts: broadcasts of 256 deliveries share one
            // timestamp.
            q.schedule(Time::from_ns((i / NODES) * 360 % 4096), i);
        }
        let t0 = Instant::now();
        let mut acc = 0u64;
        let mut popped = 0u64;
        // The engine's batched inner loop: settle on a timestamp once,
        // then drain every event that fires at that instant.
        'churn: while let Some(ts) = q.peek_time() {
            while let Some(e) = q.pop_at(ts) {
                acc = acc.wrapping_add(e);
                // One delta per burst: a broadcast's deliveries move to
                // their next hop together, so fan-outs stay clustered.
                q.schedule(ts + Duration::from_ns(45 + (e / NODES % 8) * 360), e);
                popped += 1;
                if popped >= CHURN {
                    break 'churn;
                }
            }
        }
        std::hint::black_box(acc);
        // One op = one pop + one schedule.
        2.0 * CHURN as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    (0..reps).map(|_| run()).fold(0.0, f64::max)
}

/// End-to-end events/sec of a hierarchical BASH run at `nodes` nodes
/// (`cluster`-node snooping clusters under a `banks`-bank spine) — the
/// scale trajectory the adaptive sharer sets and open-addressed block
/// tables exist for. Short measure window: the point is the per-event
/// cost at population, not a long steady state.
fn scale_events_per_sec(nodes: u16, cluster: u16, banks: u16, reps: usize) -> f64 {
    let run = || {
        let cfg = SystemConfig::paper_default(ProtocolKind::Bash, nodes, 1600)
            .with_cache(CacheGeometry { sets: 64, ways: 4 })
            .with_hierarchy(HierarchyConfig::new(cluster, banks));
        let wl = LockingMicrobench::new(nodes, nodes as u64 * 4, Duration::ZERO, 1);
        let t0 = Instant::now();
        let stats = System::run(cfg, wl, Duration::from_ns(5_000), Duration::from_ns(50_000));
        stats.events_processed as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    (0..reps).map(|_| run()).fold(0.0, f64::max)
}

/// The protocol-controller set workload at 16 nodes: track sharers one
/// by one, build request masks, check sufficiency (superset), union a
/// cluster-cast, walk the members, and periodically invalidate. The two
/// implementations below run it identically; their ops/sec ratio is the
/// `smallset_vs_bitset_16` no-regression gate.
macro_rules! set_kernel {
    ($iters:expr, $empty:expr, $full:expr, $from2:expr) => {{
        let full = $full;
        let mut sharers = $empty;
        let mut acc = 0u64;
        let t0 = Instant::now();
        for i in 0..$iters {
            let a = NodeId((i % 16) as u16);
            let b = NodeId(((i.wrapping_mul(7) + 3) % 16) as u16);
            sharers.insert(a);
            let mask = $from2(a, b);
            if full.is_superset(&sharers) {
                acc += 1;
            }
            let u = mask.union(&sharers);
            acc += u.len() as u64;
            for n in u.iter() {
                acc = acc.wrapping_add(n.0 as u64);
            }
            if i % 5 == 0 {
                sharers.remove(b);
            }
            if i % 29 == 0 {
                sharers = $empty;
            }
        }
        std::hint::black_box(acc);
        $iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    }};
}

/// Ops/sec ratio of the adaptive [`NodeSet`] over the retired fixed
/// `[u64; 64]` bitset ([`ReferenceBitSet`]) on the 16-node kernel.
fn smallset_vs_bitset_16(reps: usize) -> f64 {
    const ITERS: u64 = 1_000_000;
    let small = (0..reps)
        .map(|_| {
            set_kernel!(ITERS, NodeSet::EMPTY, NodeSet::all(16), |a, b| {
                NodeSet::from_nodes([a, b])
            })
        })
        .fold(0.0, f64::max);
    let bitset = (0..reps)
        .map(|_| {
            set_kernel!(ITERS, ReferenceBitSet::EMPTY, full_reference(16), |a, b| {
                let mut m = ReferenceBitSet::EMPTY;
                m.insert(a);
                m.insert(b);
                m
            })
        })
        .fold(0.0, f64::max);
    small / bitset.max(1e-9)
}

fn full_reference(n: u16) -> ReferenceBitSet {
    let mut s = ReferenceBitSet::EMPTY;
    for i in 0..n {
        s.insert(NodeId(i));
    }
    s
}

const SWEEP_BANDWIDTHS: [u64; 7] = [200, 400, 800, 1600, 3200, 6400, 12800];
const SWEEP_SEEDS: u32 = 4;

/// Wall seconds for the fixed sweep grid at the given thread count.
fn sweep(threads: usize) -> f64 {
    let t0 = Instant::now();
    let reports = SimBuilder::new(ProtocolKind::Bash)
        .nodes(8)
        .bandwidths(SWEEP_BANDWIDTHS)
        .seeds(SWEEP_SEEDS)
        .locking_microbench(128, Duration::ZERO)
        .warmup_ns(10_000)
        .measure_ns(100_000)
        .threads(threads)
        .run_sweep();
    assert_eq!(reports.len(), SWEEP_BANDWIDTHS.len());
    t0.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    eprintln!("measuring single-threaded events/sec (3 reps per protocol)...");
    let mut proto_lines = Vec::new();
    let mut ratio_lines = Vec::new();
    for proto in ProtocolKind::ALL {
        let eps = events_per_sec(proto, QueueKind::Calendar, 3);
        eprintln!("  {:9} {:>12.0} events/s", proto.name(), eps);
        proto_lines.push(format!("    \"{}\": {:.0}", proto.name(), eps));
        // The same point on the heap it replaced: the end-to-end ratio CI
        // gates at >= 0.95 (the calendar must not cost us the small runs).
        let heap_eps = events_per_sec(proto, QueueKind::Heap, 3);
        let ratio = eps / heap_eps.max(1e-9);
        eprintln!("  {:9} calendar/heap {ratio:>6.3}x", proto.name());
        ratio_lines.push(format!("    \"{}_16\": {:.3}", proto.name(), ratio));
    }

    eprintln!("measuring 256-node queue churn, calendar vs heap (5 reps)...");
    let cal_ops = queue_churn_ops_per_sec(QueueKind::Calendar, 5);
    let heap_ops = queue_churn_ops_per_sec(QueueKind::Heap, 5);
    let churn_ratio = cal_ops / heap_ops.max(1e-9);
    eprintln!("  calendar {cal_ops:>12.0} ops/s, heap {heap_ops:>12.0} ops/s ({churn_ratio:.2}x)");

    eprintln!("measuring hierarchical scale points (256/1024/4096 nodes)...");
    let mut scale_lines = Vec::new();
    for (nodes, cluster, banks, reps) in [(256, 16, 8, 3), (1024, 32, 16, 2), (4096, 64, 32, 1)] {
        let eps = scale_events_per_sec(nodes, cluster, banks, reps);
        eprintln!("  {nodes:>5} nodes {eps:>12.0} events/s");
        scale_lines.push(format!("    \"events_per_sec_{nodes}\": {eps:.0}"));
    }
    let set_ratio = smallset_vs_bitset_16(3);
    eprintln!("  smallset_vs_bitset_16 {set_ratio:.3}x");
    scale_lines.push(format!("    \"smallset_vs_bitset_16\": {set_ratio:.3}"));

    let grid_points = SWEEP_BANDWIDTHS.len() as u32 * SWEEP_SEEDS;
    eprintln!(
        "measuring sweep wall time ({} bandwidths x {} seeds)...",
        SWEEP_BANDWIDTHS.len(),
        SWEEP_SEEDS
    );
    let serial_s = sweep(1);
    let threads = pool::available_threads();
    // On a single-core host the pool degenerates to serial execution, so
    // a "parallel" point would only publish run-to-run noise as a bogus
    // ~1.0x speedup. Skip it and say so in the artifact.
    let sweep_section = if threads <= 1 {
        eprintln!("  serial {serial_s:.3}s; 1 thread available — parallel point skipped");
        format!(
            "    \"grid_points\": {grid_points},\n    \"available_threads\": {threads},\n    \"wall_s_threads1\": {serial_s:.4},\n    \"parallel\": \"skipped: single-core host, speedup would be noise\""
        )
    } else {
        let parallel_s = sweep(0);
        let speedup = serial_s / parallel_s.max(1e-9);
        eprintln!(
            "  serial {serial_s:.3}s, parallel {parallel_s:.3}s on {threads} threads ({speedup:.2}x)"
        );
        format!(
            "    \"grid_points\": {grid_points},\n    \"available_threads\": {threads},\n    \"wall_s_threads1\": {serial_s:.4},\n    \"wall_s_parallel\": {parallel_s:.4},\n    \"speedup\": {speedup:.3},\n    \"speedup_threads\": {threads}"
        )
    };

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"events_per_sec\": {{\n{}\n  }},\n  \"queue\": {{\n    \"calendar_vs_heap_256\": {:.3},\n    \"churn_ops_per_sec_calendar\": {:.0},\n    \"churn_ops_per_sec_heap\": {:.0},\n{}\n  }},\n  \"scale\": {{\n{}\n  }},\n  \"sweep\": {{\n{}\n  }}\n}}\n",
        proto_lines.join(",\n"),
        churn_ratio,
        cal_ops,
        heap_ops,
        ratio_lines.join(",\n"),
        scale_lines.join(",\n"),
        sweep_section,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
    print!("{json}");
}
