//! Emits `BENCH_fabric.json`: the interconnect fabric's throughput
//! baseline.
//!
//! One fixed 16-node BASH run per configuration: crossbar vs. 4×4 mesh
//! (what hop-by-hop routing, per-link queueing and edge resequencing
//! cost the engine relative to the single-hop crossbar), plus the mesh
//! under a 1 % lossy fault plane with the reliable transport on (what
//! fault bookkeeping + retransmission cost the fabric). The relative
//! factors are the numbers to watch commit to commit; `lossy_vs_mesh`
//! is expected to stay above ~0.85 (< 15 % events/sec regression) —
//! tracked as a trajectory, not a hard CI gate, since shared runners
//! are too noisy to threshold.
//!
//! Usage: `fabric_throughput [OUTPUT.json]` (default `BENCH_fabric.json`).
//! Run it through `scripts/bench_fabric.sh` for a release build.

use std::time::Instant;

use bash::{Duration, FaultPlaneConfig, ProtocolKind, System, SystemConfig, TopologyKind};
use bash_coherence::CacheGeometry;
use bash_workloads::LockingMicrobench;

/// One fixed end-to-end run; returns (events processed, wall seconds).
fn timed_run(topology: TopologyKind, fault: Option<FaultPlaneConfig>) -> (u64, f64) {
    let mut cfg = SystemConfig::paper_default(ProtocolKind::Bash, 16, 1600)
        .with_topology(topology)
        .with_cache(CacheGeometry { sets: 256, ways: 4 });
    if let Some(plane) = fault {
        cfg = cfg.with_fault_plane(plane);
    }
    let wl = LockingMicrobench::new(16, 256, Duration::ZERO, 1);
    let t0 = Instant::now();
    let stats = System::run(
        cfg,
        wl,
        Duration::from_ns(10_000),
        Duration::from_ns(200_000),
    );
    (stats.events_processed, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` events/sec for one configuration.
fn events_per_sec(topology: TopologyKind, fault: Option<&FaultPlaneConfig>, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let (events, secs) = timed_run(topology, fault.cloned());
            events as f64 / secs.max(1e-9)
        })
        .fold(0.0, f64::max)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fabric.json".to_string());

    eprintln!("measuring fabric events/sec, 16-node BASH (3 reps per config)...");
    let crossbar = events_per_sec(TopologyKind::Crossbar, None, 3);
    eprintln!("  crossbar-16   {crossbar:>12.0} events/s");
    let mesh = events_per_sec(TopologyKind::Mesh2D, None, 3);
    eprintln!("  mesh-16       {mesh:>12.0} events/s");
    let lossy_plane = FaultPlaneConfig::lossy(0xC0A5, 0.01);
    let lossy = events_per_sec(TopologyKind::Mesh2D, Some(&lossy_plane), 3);
    eprintln!("  mesh-16-lossy {lossy:>12.0} events/s (1% loss, transport on)");

    let json = format!(
        "{{\n  \"bench\": \"fabric\",\n  \"events_per_sec\": {{\n    \"crossbar-16\": {:.0},\n    \"mesh-16\": {:.0},\n    \"mesh-16-lossy\": {:.0}\n  }},\n  \"mesh_vs_crossbar\": {:.3},\n  \"lossy_vs_mesh\": {:.3}\n}}\n",
        crossbar,
        mesh,
        lossy,
        mesh / crossbar.max(1e-9),
        lossy / mesh.max(1e-9),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
    print!("{json}");
}
