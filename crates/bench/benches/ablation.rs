//! Ablation benches for the design choices DESIGN.md calls out: each group
//! contrasts a BASH design decision against its alternative on the same
//! workload point, reporting the performance (as run stats asserted inside
//! the benchmark) and the simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bash_adaptive::{AdaptorConfig, DecisionMode};
use bash_coherence::{CacheGeometry, ProtocolKind};
use bash_kernel::Duration;
use bash_sim::{RunStats, System, SystemConfig};
use bash_workloads::LockingMicrobench;

fn run_with(
    adaptor: AdaptorConfig,
    mbps: u64,
    retry_capacity: usize,
    serialize_dram: bool,
) -> RunStats {
    let mut cfg = SystemConfig::paper_default(ProtocolKind::Bash, 16, mbps)
        .with_adaptor(adaptor)
        .with_cache(CacheGeometry { sets: 256, ways: 4 });
    cfg.retry_capacity = retry_capacity;
    cfg.serialize_dram = serialize_dram;
    let wl = LockingMicrobench::new(16, 256, Duration::ZERO, 1);
    System::run(
        cfg,
        wl,
        Duration::from_ns(30_000),
        Duration::from_ns(80_000),
    )
}

/// Adaptive vs the static extremes: the reason BASH exists.
fn ablation_decision_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/decision_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("adaptive", DecisionMode::Adaptive),
        ("always_broadcast", DecisionMode::AlwaysBroadcast),
        ("always_unicast", DecisionMode::AlwaysUnicast),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| {
                let mut a = AdaptorConfig::paper_default();
                a.mode = m;
                run_with(a, 800, 64, false)
            })
        });
    }
    g.finish();
}

/// Sampling interval: the paper picked 512 cycles as the stability/agility
/// compromise.
fn ablation_sampling_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sampling_interval");
    g.sample_size(10);
    for interval in [64u64, 512, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(interval), &interval, |b, &i| {
            b.iter(|| {
                let mut a = AdaptorConfig::paper_default();
                a.sampling_interval_cycles = i;
                run_with(a, 800, 64, false)
            })
        });
    }
    g.finish();
}

/// Policy counter width: narrower counters react faster but risk
/// oscillation (§2.2).
fn ablation_policy_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/policy_bits");
    g.sample_size(10);
    for bits in [4u32, 8, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &n| {
            b.iter(|| {
                let mut a = AdaptorConfig::paper_default();
                a.policy_bits = n;
                run_with(a, 800, 64, false)
            })
        });
    }
    g.finish();
}

/// Retry-buffer size: 1 forces the nack/deadlock-resolution path.
fn ablation_retry_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/retry_capacity");
    g.sample_size(10);
    for cap in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &n| {
            b.iter(|| {
                let mut a = AdaptorConfig::paper_default();
                a.mode = DecisionMode::AlwaysUnicast;
                run_with(a, 1600, n, false)
            })
        });
    }
    g.finish();
}

/// Memory occupancy: the paper models contention only at the endpoints;
/// serializing DRAM shows what that abstraction hides.
fn ablation_memory_occupancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/memory_occupancy");
    g.sample_size(10);
    for (name, ser) in [("infinite_ports", false), ("serialized", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &ser, |b, &s| {
            b.iter(|| run_with(AdaptorConfig::paper_default(), 800, 64, s))
        });
    }
    g.finish();
}

/// Utilization threshold (Figure 7's knob).
fn ablation_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/threshold");
    g.sample_size(10);
    for pct in [55u32, 75, 95] {
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &p| {
            b.iter(|| {
                let mut a = AdaptorConfig::paper_default();
                a.threshold_percent = p;
                run_with(a, 800, 64, false)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablation,
    ablation_decision_mode,
    ablation_sampling_interval,
    ablation_policy_bits,
    ablation_retry_capacity,
    ablation_memory_occupancy,
    ablation_threshold,
);
criterion_main!(ablation);
