//! Simulator-engine microbenchmarks: event queue, network, bitsets, cache
//! array and end-to-end event throughput. These guard the simulator's own
//! performance (the experiments run millions of events per data point).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bash::SimBuilder;
use bash_coherence::cache::{CacheArray, CacheGeometry, Mosi};
use bash_coherence::types::{BlockAddr, BlockData};
use bash_coherence::ProtocolKind;
use bash_kernel::{Duration, EventQueue, Time};
use bash_net::{Crossbar, Message, MsgArena, NetConfig, NetStep, NodeId, NodeSet, VnetId};
use bash_sim::{System, SystemConfig};
use bash_workloads::LockingMicrobench;

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(Time::from_ns((i * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
    g.finish();
}

fn node_set_ops(c: &mut Criterion) {
    let full = NodeSet::all(64);
    let small = NodeSet::from_nodes([NodeId(3), NodeId(17), NodeId(42)]);
    c.bench_function("engine/nodeset_superset", |b| {
        b.iter(|| std::hint::black_box(&full).is_superset(std::hint::black_box(&small)))
    });
    c.bench_function("engine/nodeset_iter64", |b| {
        b.iter(|| {
            std::hint::black_box(&full)
                .iter()
                .map(|n| n.0 as u64)
                .sum::<u64>()
        })
    });
}

fn cache_array(c: &mut Criterion) {
    c.bench_function("engine/cache_touch_hit", |b| {
        let mut cache = CacheArray::new(CacheGeometry {
            sets: 1024,
            ways: 4,
        });
        for i in 0..4096u64 {
            cache.insert(BlockAddr(i), Mosi::S, BlockData::ZERO);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            cache.touch(BlockAddr(i))
        })
    });
}

fn crossbar_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/crossbar");
    g.throughput(Throughput::Elements(1));
    g.bench_function("broadcast_64_nodes", |b| {
        let mut net: Crossbar<u64> = Crossbar::new(NetConfig::new(64, 1600));
        let mut q = EventQueue::new();
        let mut arena = MsgArena::new();
        let mut step = NetStep::new();
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_ns(1000);
            let msg = Message::ordered(NodeId(0), NodeSet::all(64), 8, 42u64);
            net.send(now, msg, &mut step);
            for (t, e) in step.schedule.drain(..) {
                q.schedule(t, e);
            }
            let mut delivered = 0;
            while let Some((t, e)) = q.pop() {
                net.handle(t, e, &mut arena, &mut step);
                for (t2, e2) in step.schedule.drain(..) {
                    q.schedule(t2, e2);
                }
                delivered += step.deliveries.len();
                for d in step.deliveries.drain(..) {
                    arena.release(d.msg);
                }
            }
            delivered
        })
    });
    g.finish();
}

fn unicast_point_to_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/crossbar_unicast");
    g.throughput(Throughput::Elements(1));
    g.bench_function("unicast", |b| {
        let mut net: Crossbar<u64> = Crossbar::new(NetConfig::new(4, 1600));
        let mut q = EventQueue::new();
        let mut arena = MsgArena::new();
        let mut step = NetStep::new();
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_ns(500);
            let msg = Message::unordered(NodeId(0), NodeId(2), VnetId::DATA, 72, 1u64);
            net.send(now, msg, &mut step);
            for (t, e) in step.schedule.drain(..) {
                q.schedule(t, e);
            }
            while let Some((t, e)) = q.pop() {
                net.handle(t, e, &mut arena, &mut step);
                for (t2, e2) in step.schedule.drain(..) {
                    q.schedule(t2, e2);
                }
                for d in step.deliveries.drain(..) {
                    arena.release(d.msg);
                }
            }
        })
    });
    g.finish();
}

/// The headline engine metric: simulated events per wall-clock second on a
/// fixed end-to-end run (the number `scripts/bench_baseline.sh` records in
/// `BENCH_engine.json`).
fn events_per_sec(c: &mut Criterion) {
    let run = |proto: ProtocolKind| {
        let cfg = SystemConfig::paper_default(proto, 16, 1600)
            .with_cache(CacheGeometry { sets: 256, ways: 4 });
        let wl = LockingMicrobench::new(16, 256, Duration::ZERO, 1);
        System::run(
            cfg,
            wl,
            Duration::from_ns(10_000),
            Duration::from_ns(50_000),
        )
    };
    let mut g = c.benchmark_group("engine/events_per_sec");
    g.sample_size(10);
    for proto in ProtocolKind::ALL {
        // Event counts are deterministic: measure once, then report the
        // benchmark's wall time as events/second throughput.
        let events = run(proto).events_processed;
        g.throughput(Throughput::Elements(events));
        g.bench_function(proto.name(), |b| b.iter(|| run(proto).events_processed));
    }
    g.finish();
}

/// The parallel sweep executor against its own sequential mode: the same
/// (bandwidth × seed) grid at `.threads(1)` and at the default thread
/// count. The speedup ratio is the tentpole's multi-core win.
fn sweep_parallelism(c: &mut Criterion) {
    let grid = |threads: usize| {
        SimBuilder::new(ProtocolKind::Bash)
            .nodes(8)
            .bandwidths([200, 400, 800, 1600, 3200, 6400])
            .seeds(2)
            .locking_microbench(128, Duration::ZERO)
            .warmup_ns(10_000)
            .measure_ns(40_000)
            .threads(threads)
            .run_sweep()
            .len()
    };
    let mut g = c.benchmark_group("engine/sweep");
    g.sample_size(10);
    g.bench_function("serial_threads1", |b| b.iter(|| grid(1)));
    g.bench_function("parallel_auto", |b| b.iter(|| grid(0)));
    g.finish();
}

criterion_group!(
    engine,
    event_queue,
    node_set_ops,
    cache_array,
    crossbar_broadcast,
    unicast_point_to_point,
    events_per_sec,
    sweep_parallelism,
);
criterion_main!(engine);
