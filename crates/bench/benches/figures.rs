//! One Criterion group per paper table/figure: each benchmark runs a
//! single representative point of the corresponding experiment, so
//! `cargo bench` regenerates (miniature, timed) versions of every result.
//! The full sweeps live in `bash-experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bash_adaptive::AdaptorConfig;
use bash_coherence::{CacheGeometry, ProtocolKind};
use bash_kernel::Duration;
use bash_queueing::{analytic, simulate, RepairmanParams};
use bash_sim::{RunStats, System, SystemConfig};
use bash_workloads::{LockingMicrobench, SyntheticWorkload, WorkloadParams};

fn micro_point(proto: ProtocolKind, nodes: u16, mbps: u64, think: u64, bcost: u32) -> RunStats {
    let cfg = SystemConfig::paper_default(proto, nodes, mbps)
        .with_broadcast_cost(bcost)
        .with_cache(CacheGeometry { sets: 256, ways: 4 });
    let wl = LockingMicrobench::new(nodes, 256, Duration::from_cycles(think), 1);
    System::run(
        cfg,
        wl,
        Duration::from_ns(30_000),
        Duration::from_ns(60_000),
    )
}

fn macro_point(proto: ProtocolKind, params: WorkloadParams, bcost: u32) -> RunStats {
    let cfg = SystemConfig::paper_default(proto, 16, 1600)
        .with_broadcast_cost(bcost)
        .with_cache(CacheGeometry { sets: 512, ways: 4 });
    let wl = SyntheticWorkload::new(16, params, 1);
    System::run(
        cfg,
        wl,
        Duration::from_ns(30_000),
        Duration::from_ns(80_000),
    )
}

/// Figure 1/5/6: one bandwidth point per protocol (16p mini version).
fn fig1_perf_vs_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_perf_vs_bandwidth");
    g.sample_size(10);
    for proto in ProtocolKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &proto,
            |b, &p| b.iter(|| micro_point(p, 16, 1600, 0, 1)),
        );
    }
    g.finish();
}

/// Figure 2: the queueing model (analytic + simulated point at the knee).
fn fig2_queueing_knee(c: &mut Criterion) {
    let params = RepairmanParams {
        customers: 16,
        mean_service: 1.0,
        mean_think: 15.0,
    };
    c.bench_function("fig2_queueing_knee/analytic", |b| {
        b.iter(|| analytic(std::hint::black_box(params)))
    });
    c.bench_function("fig2_queueing_knee/simulated", |b| {
        b.iter(|| simulate(std::hint::black_box(params), 5_000, 7))
    });
}

/// Figure 6: utilization measurement at one point (BASH pinning 75%).
fn fig6_utilization(c: &mut Criterion) {
    c.bench_function("fig6_utilization/bash_800", |b| {
        b.iter(|| {
            let s = micro_point(ProtocolKind::Bash, 16, 800, 0, 1);
            assert!(s.link_utilization > 0.5);
            s
        })
    });
}

/// Figure 8: one small and one large system point.
fn fig8_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scaling");
    g.sample_size(10);
    for nodes in [8u16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| micro_point(ProtocolKind::Bash, n, 1600, 0, 1))
        });
    }
    g.finish();
}

/// Figure 9: the think-time sweep endpoints.
fn fig9_think_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_think_time");
    g.sample_size(10);
    for think in [0u64, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(think), &think, |b, &t| {
            b.iter(|| micro_point(ProtocolKind::Snooping, 16, 1600, t, 1))
        });
    }
    g.finish();
}

/// Figures 10–12: one macro workload point per protocol (4x broadcast).
fn fig12_workload_bars(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_workload_bars");
    g.sample_size(10);
    for proto in ProtocolKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &proto,
            |b, &p| b.iter(|| macro_point(p, WorkloadParams::oltp(), 4)),
        );
    }
    g.finish();
}

/// Table 1: transition coverage collection speed (tester throughput).
fn table1_coverage(c: &mut Criterion) {
    c.bench_function("table1_coverage/bash_hostile", |b| {
        b.iter(|| {
            let mut cfg = bash_tester_shim::hostile(ProtocolKind::Bash, 1);
            cfg.ops_per_node = 200;
            bash_tester_shim::run(cfg)
        })
    });
}

/// Local shim so the bench crate does not depend on dev-only test code.
mod bash_tester_shim {
    pub use bash_coherence::ProtocolKind;
    // The tester crate is a normal dependency of the workspace; re-export
    // the pieces the bench needs.
    pub fn hostile(p: ProtocolKind, seed: u64) -> bash_tester::TesterConfig {
        bash_tester::TesterConfig::hostile(p, seed)
    }
    pub fn run(cfg: bash_tester::TesterConfig) -> bash_tester::TesterReport {
        bash_tester::run_random_test(cfg)
    }
}

/// BASH's adaptive mechanism itself (decide + sample) — the paper argues it
/// is off the critical path; it had better be cheap.
fn adaptive_mechanism(c: &mut Criterion) {
    use bash_adaptive::BandwidthAdaptor;
    c.bench_function("adaptive/decide", |b| {
        let mut a = BandwidthAdaptor::new(&AdaptorConfig::paper_default(), 1);
        b.iter(|| a.decide())
    });
    c.bench_function("adaptive/sample_window", |b| {
        let mut a = BandwidthAdaptor::new(&AdaptorConfig::paper_default(), 1);
        b.iter(|| a.sample_window(400, 512))
    });
}

criterion_group!(
    figures,
    fig1_perf_vs_bandwidth,
    fig2_queueing_knee,
    fig6_utilization,
    fig8_scaling,
    fig9_think_time,
    fig12_workload_bars,
    table1_coverage,
    adaptive_mechanism,
);
criterion_main!(figures);
